// Package health implements the Health benchmark: a simulation of the
// Columbian health care system (paper Table 1: 1365 villages). Villages
// form a four-way tree; each village has a hospital with limited personnel
// and waiting/assessment/inside patient lists. Each timestep the tree is
// traversed; patients are generated at leaf villages, assessed, and either
// treated locally or passed up the tree to the parent hospital.
//
// Heuristic choice (Table 2: M+C): the four-way recursion's update
// combines to 1−0.3⁴ ≈ 99% ≥ threshold, so the tree traversal migrates;
// the patient-list walks have list affinity (70%), so remote list items
// cache. Table 2 reports the whole-program time (HealthW); migrate-only is
// a wash here because fewer than two percent of the patients at a node
// arrive from a remote processor.
package health

import (
	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// Village layout.
const (
	offChild0  = 0 // four children at 0,8,16,24
	offLevel   = 32
	offSeed    = 40
	offFree    = 48
	offWaiting = 56
	offAssess  = 64
	offInside  = 72
	offTreated = 80
	offVisits  = 88
	villageSz  = 96
)

// Patient layout.
const (
	offNext     = 0
	offTimeLeft = 8
	offHops     = 16
	patientSz   = 24
)

// Simulation parameters.
const (
	paperLevels = 6 // (4^6−1)/3 = 1365 villages
	steps       = 32
	assessTime  = 3
	insideTime  = 10
	genPct      = 40  // chance a leaf generates a patient each step
	passUpPct   = 25  // chance an assessed patient is passed up
	villageWork = 150 // per-village per-step bookkeeping
	patientWork = 120 // per-patient per-check computation
	futureCost  = 38  // lazy futurecall bookkeeping per recursion
)

// KernelSource is the kernel in the mini-C subset; the heuristic must
// migrate the village traversal and cache the patient lists.
const KernelSource = `
struct patient {
  struct patient *next;
  int time_left;
};
struct village {
  struct village *c0;
  struct village *c1;
  struct village *c2;
  struct village *c3;
  struct patient *waiting;
  struct patient *assess;
  struct patient *inside;
};

struct patient * sim(struct village *v) {
  struct patient *p;
  if (v == NULL) return NULL;
  touch(futurecall(sim(v->c0)));
  touch(futurecall(sim(v->c1)));
  touch(futurecall(sim(v->c2)));
  touch(futurecall(sim(v->c3)));
  p = v->assess;
  while (p) {
    p->time_left = p->time_left - 1;
    p = p->next;
  }
  return v->waiting;
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "health",
		Description: "Simulates the Columbian health care system",
		PaperSize:   "1365 villages",
		Choice:      "M+C",
		Whole:       true,
		Run:         Run,
		Source:      KernelSource,
	})
}

// lcg is the per-village random stream (order-independent across villages,
// so parallel and sequential runs draw identical numbers).
func lcgNext(seed uint64) uint64 { return seed*6364136223846793005 + 1442695040888963407 }
func lcgPct(seed uint64) int     { return int(seed >> 33 % 100) }

type state struct {
	r         *rt.Runtime
	siteTree  *rt.Site
	siteList  *rt.Site
	parallel  bool
	spawnLvls int
}

// levelsFor scales the paper's six-level tree down.
func levelsFor(cfg bench.Config) int {
	n := cfg.Scaled(1365, 85)
	l, total := 0, 0
	for total < n {
		total += pow4(l)
		l++
	}
	return l
}

func pow4(k int) int { return 1 << (2 * uint(k)) }

// build allocates the village tree through the thread (Health reports
// whole-program times, so building is costed), distributing subtrees over
// a processor range.
func (s *state) build(t *rt.Thread, level int, lo, hi int, seed uint64) gaddr.GP {
	if level == 0 {
		return gaddr.Nil
	}
	v := t.Alloc(lo, villageSz)
	t.Work(villageWork)
	st := s.siteTree
	t.StoreInt(st, v, offLevel, int64(level))
	t.StoreWord(st, v, offSeed, seed)
	t.StoreInt(st, v, offFree, int64(level))
	for c := 0; c < 4; c++ {
		clo, chi := lo, hi
		if hi-lo >= 4 {
			span := (hi - lo) / 4
			clo, chi = lo+c*span, lo+(c+1)*span
		} else if hi-lo > 1 {
			clo = lo + c%(hi-lo)
			chi = clo + 1
		}
		child := s.build(t, level-1, clo, chi, lcgNext(seed^uint64(c*2654435761+1)))
		t.StorePtr(st, v, uint32(offChild0+8*c), child)
	}
	return v
}

// prepend pushes patient p onto the list field of v.
func (s *state) prepend(t *rt.Thread, v gaddr.GP, listOff uint32, p gaddr.GP) {
	head := t.LoadPtr(s.siteTree, v, listOff)
	t.StorePtr(s.siteList, p, offNext, head)
	t.StorePtr(s.siteTree, v, listOff, p)
}

// sim runs one timestep at v and returns the list (threaded through next)
// of patients passed up to the parent.
func (s *state) sim(t *rt.Thread, v gaddr.GP, level int) gaddr.GP {
	if v.IsNil() {
		return gaddr.Nil
	}
	st, sl := s.siteTree, s.siteList

	// Recurse into the children; the paper's version futurecalls each
	// child and touches the results in order.
	var children [4]gaddr.GP
	for c := 0; c < 4; c++ {
		children[c] = t.LoadPtr(st, v, uint32(offChild0+8*c))
	}
	var up [4]gaddr.GP
	if s.parallel && level >= s.spawnLvls {
		var futs [4]*rt.Future[gaddr.GP]
		for c := 0; c < 4; c++ {
			if children[c].IsNil() {
				continue
			}
			child := children[c]
			futs[c] = rt.Spawn(t, func(ct *rt.Thread) gaddr.GP {
				return s.sim(ct, child, level-1)
			})
		}
		for c := 0; c < 4; c++ {
			if futs[c] != nil {
				up[c] = futs[c].Touch(t)
			}
		}
	} else {
		if s.parallel {
			t.Work(futureCost)
		}
		for c := 0; c < 4; c++ {
			if !children[c].IsNil() {
				child := children[c]
				up[c] = rt.Call(t, func() gaddr.GP { return s.sim(t, child, level-1) })
			}
		}
	}

	t.Work(villageWork)

	// Patients arriving from below join the waiting list.
	for c := 0; c < 4; c++ {
		p := up[c]
		for !p.IsNil() {
			next := t.LoadPtr(sl, p, offNext)
			hops := t.LoadInt(sl, p, offHops)
			t.StoreInt(sl, p, offHops, hops+1)
			s.prepend(t, v, offWaiting, p)
			p = next
		}
	}

	// check_inside: treat patients; discharge when done.
	s.walkList(t, v, offInside, func(p gaddr.GP) listAction {
		t.Work(patientWork)
		left := t.LoadInt(sl, p, offTimeLeft) - 1
		t.StoreInt(sl, p, offTimeLeft, left)
		if left > 0 {
			return keep
		}
		free := t.LoadInt(st, v, offFree)
		t.StoreInt(st, v, offFree, free+1)
		t.StoreInt(st, v, offTreated, t.LoadInt(st, v, offTreated)+1)
		t.StoreInt(st, v, offVisits, t.LoadInt(st, v, offVisits)+t.LoadInt(sl, p, offHops))
		return remove
	})

	// check_assess: after assessment, treat here or pass up. Moves to
	// another list of the same village are deferred until after the
	// walks so a walk never revisits a moved patient. (pending is local:
	// concurrent villages each have their own.)
	var pending []pendingMove
	var passHead gaddr.GP
	s.walkList(t, v, offAssess, func(p gaddr.GP) listAction {
		t.Work(patientWork)
		left := t.LoadInt(sl, p, offTimeLeft) - 1
		t.StoreInt(sl, p, offTimeLeft, left)
		if left > 0 {
			return keep
		}
		seed := lcgNext(t.LoadWord(st, v, offSeed))
		t.StoreWord(st, v, offSeed, seed)
		if lcgPct(seed) < passUpPct {
			// Pass up: release personnel, chain onto the pass list.
			free := t.LoadInt(st, v, offFree)
			t.StoreInt(st, v, offFree, free+1)
			t.StorePtr(sl, p, offNext, passHead)
			passHead = p
			return removeKeepNext
		}
		t.StoreInt(sl, p, offTimeLeft, insideTime)
		pending = append(pending, pendingMove{p: p, list: offInside})
		return removeKeepNext
	})

	// check_waiting: admit patients while personnel are free.
	s.walkList(t, v, offWaiting, func(p gaddr.GP) listAction {
		t.Work(patientWork)
		free := t.LoadInt(st, v, offFree)
		if free <= 0 {
			return keep
		}
		t.StoreInt(st, v, offFree, free-1)
		t.StoreInt(sl, p, offTimeLeft, assessTime)
		pending = append(pending, pendingMove{p: p, list: offAssess})
		return removeKeepNext
	})
	for _, m := range pending {
		s.prepend(t, v, m.list, m.p)
	}

	// Leaf villages generate new patients.
	if level == 1 {
		seed := lcgNext(t.LoadWord(st, v, offSeed))
		t.StoreWord(st, v, offSeed, seed)
		if lcgPct(seed) < genPct {
			p := t.AllocAtHome(v, patientSz)
			t.StoreInt(sl, p, offTimeLeft, 0)
			t.StoreInt(sl, p, offHops, 0)
			s.prepend(t, v, offWaiting, p)
		}
	}
	return passHead
}

// listAction tells walkList what to do with the current patient.
type listAction int

const (
	keep listAction = iota
	remove
	removeKeepNext // removed, but its next field will be rewritten by the callback's move
)

// walkList traverses a village list applying f, unlinking removed
// patients.
func (s *state) walkList(t *rt.Thread, v gaddr.GP, listOff uint32, f func(p gaddr.GP) listAction) {
	prev := gaddr.Nil
	p := t.LoadPtr(s.siteTree, v, listOff)
	for !p.IsNil() {
		next := t.LoadPtr(s.siteList, p, offNext)
		switch f(p) {
		case keep:
			prev = p
		case remove, removeKeepNext:
			if prev.IsNil() {
				t.StorePtr(s.siteTree, v, listOff, next)
			} else {
				t.StorePtr(s.siteList, prev, offNext, next)
			}
		}
		p = next
	}
}

type pendingMove struct {
	p    gaddr.GP
	list uint32
}

// Run executes Health under the configuration.
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	levels := levelsFor(cfg)
	s := &state{
		r:        r,
		siteTree: &rt.Site{Name: "health.tree", Mech: rt.Migrate},
		siteList: &rt.Site{Name: "health.list", Mech: rt.Cache},
		parallel: !cfg.Baseline,
	}
	// Spawn futures only down to the distribution depth.
	depth := 0
	for pow4(depth) < r.P() {
		depth++
	}
	s.spawnLvls = levels - depth + 1

	var root gaddr.GP
	var check uint64
	var cycles int64
	r.Run(0, func(t *rt.Thread) {
		root = s.build(t, levels, 0, r.P(), 12345)
		for step := 0; step < steps; step++ {
			leftover := rt.Call(t, func() gaddr.GP { return s.sim(t, root, levels) })
			// Patients passed above the root re-enter the root's
			// waiting list next step.
			for p := leftover; !p.IsNil(); {
				next := t.LoadPtr(s.siteList, p, offNext)
				s.prepend(t, root, offWaiting, p)
				p = next
			}
		}
		cycles = r.M.Makespan() // verification below is not program time
		check = s.checksum(t, root)
	})

	return bench.Result{
		Name:      "health",
		Procs:     r.P(),
		Cycles:    cycles,
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     check,
		WantCheck: reference(levels, r.P()),
	}
}

// checksum folds every village's counters and remaining list lengths.
func (s *state) checksum(t *rt.Thread, v gaddr.GP) uint64 {
	if v.IsNil() {
		return 0
	}
	var sum uint64
	sum += uint64(t.LoadInt(s.siteTree, v, offTreated)) * 1000003
	sum += uint64(t.LoadInt(s.siteTree, v, offVisits)) * 10007
	sum += uint64(t.LoadInt(s.siteTree, v, offFree)) * 101
	for _, off := range []uint32{offWaiting, offAssess, offInside} {
		n := 0
		for p := t.LoadPtr(s.siteTree, v, off); !p.IsNil(); p = t.LoadPtr(s.siteList, p, offNext) {
			n++
		}
		sum += uint64(n) * 13
	}
	for c := 0; c < 4; c++ {
		sum = sum*31 + s.checksum(t, t.LoadPtr(s.siteTree, v, uint32(offChild0+8*c)))
	}
	return sum
}
