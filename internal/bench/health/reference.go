package health

// reference is the plain-Go sequential implementation of the same
// simulation. It mirrors the distributed kernel statement for statement —
// same per-village random streams, same list orders — so checksums must
// match exactly.

type refPatient struct {
	next     *refPatient
	timeLeft int64
	hops     int64
}

type refVillage struct {
	children [4]*refVillage
	level    int64
	seed     uint64
	free     int64
	waiting  *refPatient
	assess   *refPatient
	inside   *refPatient
	treated  int64
	visits   int64
}

func refBuild(level int, seed uint64) *refVillage {
	if level == 0 {
		return nil
	}
	v := &refVillage{level: int64(level), seed: seed, free: int64(level)}
	for c := 0; c < 4; c++ {
		v.children[c] = refBuild(level-1, lcgNext(seed^uint64(c*2654435761+1)))
	}
	return v
}

func refPrepend(head **refPatient, p *refPatient) {
	p.next = *head
	*head = p
}

type refAction int

const (
	refKeep refAction = iota
	refRemove
)

func refWalk(head **refPatient, f func(p *refPatient) refAction) {
	var prev *refPatient
	p := *head
	for p != nil {
		next := p.next
		switch f(p) {
		case refKeep:
			prev = p
		case refRemove:
			if prev == nil {
				*head = next
			} else {
				prev.next = next
			}
		}
		p = next
	}
}

func refSim(v *refVillage, level int) *refPatient {
	if v == nil {
		return nil
	}
	var up [4]*refPatient
	for c := 0; c < 4; c++ {
		up[c] = refSim(v.children[c], level-1)
	}

	for c := 0; c < 4; c++ {
		p := up[c]
		for p != nil {
			next := p.next
			p.hops++
			refPrepend(&v.waiting, p)
			p = next
		}
	}

	refWalk(&v.inside, func(p *refPatient) refAction {
		p.timeLeft--
		if p.timeLeft > 0 {
			return refKeep
		}
		v.free++
		v.treated++
		v.visits += p.hops
		return refRemove
	})

	var passHead *refPatient
	var pending []*refPatient
	var pendingList []int // 0 = inside, 1 = assess
	refWalk(&v.assess, func(p *refPatient) refAction {
		p.timeLeft--
		if p.timeLeft > 0 {
			return refKeep
		}
		v.seed = lcgNext(v.seed)
		if lcgPct(v.seed) < passUpPct {
			v.free++
			p.next = passHead
			passHead = p
			return refRemove
		}
		p.timeLeft = insideTime
		pending = append(pending, p)
		pendingList = append(pendingList, 0)
		return refRemove
	})

	refWalk(&v.waiting, func(p *refPatient) refAction {
		if v.free <= 0 {
			return refKeep
		}
		v.free--
		p.timeLeft = assessTime
		pending = append(pending, p)
		pendingList = append(pendingList, 1)
		return refRemove
	})
	for i, p := range pending {
		if pendingList[i] == 0 {
			refPrepend(&v.inside, p)
		} else {
			refPrepend(&v.assess, p)
		}
	}

	if level == 1 {
		v.seed = lcgNext(v.seed)
		if lcgPct(v.seed) < genPct {
			refPrepend(&v.waiting, &refPatient{})
		}
	}
	return passHead
}

func refChecksum(v *refVillage) uint64 {
	if v == nil {
		return 0
	}
	var sum uint64
	sum += uint64(v.treated) * 1000003
	sum += uint64(v.visits) * 10007
	sum += uint64(v.free) * 101
	for _, head := range []*refPatient{v.waiting, v.assess, v.inside} {
		n := 0
		for p := head; p != nil; p = p.next {
			n++
		}
		sum += uint64(n) * 13
	}
	for c := 0; c < 4; c++ {
		sum = sum*31 + refChecksum(v.children[c])
	}
	return sum
}

// reference runs the whole simulation in plain Go and returns the
// checksum; procs is unused (the data layout does not affect results) but
// kept for signature symmetry.
func reference(levels, procs int) uint64 {
	_ = procs
	root := refBuild(levels, 12345)
	for step := 0; step < steps; step++ {
		leftover := refSim(root, levels)
		for p := leftover; p != nil; {
			next := p.next
			refPrepend(&root.waiting, p)
			p = next
		}
	}
	return refChecksum(root)
}
