package bench_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"

	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/power"
)

// accessRun executes one benchmark and returns the kernel-phase access
// digest (the scheme-invariant projection certificates are checked
// against).
func accessRun(t *testing.T, name string, procs int, scheme int) trace.Digest {
	t.Helper()
	info, ok := bench.Get(name)
	if !ok {
		t.Fatalf("benchmark %q not registered", name)
	}
	rec := trace.New(0)
	res := info.Run(bench.Config{Procs: procs, Scheme: schemes[scheme].kind, Trace: rec})
	if !res.Verified() {
		t.Fatalf("%s under %s failed verification", name, schemes[scheme].name)
	}
	return rec.AccessDigest()
}

// TestCertifiedKernelsSchemeInvariant is the runtime half of the
// cacheability certificates: the kernels the effects analysis certifies
// (treeadd, power, mst — migrate-only, no extern calls) must produce
// byte-identical access digests under all three coherence schemes. The
// oldenvet cert-trace check enforces the same property from the static
// side; this test pins it where the benchmarks live.
func TestCertifiedKernelsSchemeInvariant(t *testing.T) {
	for _, name := range []string{"treeadd", "power", "mst"} {
		t.Run(name, func(t *testing.T) {
			base := accessRun(t, name, 4, 0)
			if base.Events == 0 {
				t.Fatalf("%s: empty access digest", name)
			}
			for i := 1; i < len(schemes); i++ {
				got := accessRun(t, name, 4, i)
				if got != base {
					t.Errorf("%s: access digest differs under %s:\n %s\nvs %s under %s",
						name, schemes[i].name, got, base, schemes[0].name)
				}
			}
		})
	}
}

// TestUncertifiedKernelDigestsDiffer keeps the projection honest: a
// kernel that actually caches (bisort, refused as mixed-mechanisms) has
// scheme-dependent access behaviour, so if its digests agreed across
// schemes the projection would be discarding too much to mean anything.
func TestUncertifiedKernelDigestsDiffer(t *testing.T) {
	a := accessRun(t, "bisort", 4, 0)
	b := accessRun(t, "bisort", 4, 1)
	if a == b {
		t.Errorf("bisort access digests agree across schemes; projection too coarse:\n%s", a)
	}
}
