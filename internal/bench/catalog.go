package bench

import (
	"encoding/json"

	"repro/internal/coherence"
	"repro/internal/rt"
)

// CatalogEntry is the machine-readable description of one registered
// benchmark: everything a client needs to construct a valid run request.
// `oldenbench -list`, `oldend`'s GET /benchmarks and `oldenload`'s default
// mix all render this one enumeration, so the three binaries can never
// drift on names, schemes, modes or default parameters.
type CatalogEntry struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	PaperSize   string   `json:"paper_size"`
	Choice      string   `json:"choice"`
	Whole       bool     `json:"whole,omitempty"`
	Schemes     []string `json:"schemes"`
	Modes       []string `json:"modes"`

	// DefaultProcs/DefaultScale are the parameters a request gets when it
	// leaves them unset; MaxProcs bounds what the simulator accepts.
	DefaultProcs int `json:"default_procs"`
	DefaultScale int `json:"default_scale"`
	MaxProcs     int `json:"max_procs"`
}

// CatalogDefaultProcs is the machine size a run request gets when it does
// not name one — the size the pinned BENCH_<name>.json records use.
const CatalogDefaultProcs = 4

// CatalogMaxProcs bounds request machine sizes, matching the CLI flags.
const CatalogMaxProcs = 64

// Catalog enumerates every registered benchmark in Table 1 order with the
// scheme and mode vocabularies taken directly from the simulator's own
// enumerations.
func Catalog() []CatalogEntry {
	var schemes []string
	for _, k := range coherence.Kinds() {
		schemes = append(schemes, k.String())
	}
	var modes []string
	for _, m := range rt.Modes() {
		modes = append(modes, m.String())
	}
	var out []CatalogEntry
	for _, name := range Names() {
		info, _ := Get(name)
		out = append(out, CatalogEntry{
			Name:         info.Name,
			Description:  info.Description,
			PaperSize:    info.PaperSize,
			Choice:       info.Choice,
			Whole:        info.Whole,
			Schemes:      schemes,
			Modes:        modes,
			DefaultProcs: CatalogDefaultProcs,
			DefaultScale: DefaultScale,
			MaxProcs:     CatalogMaxProcs,
		})
	}
	return out
}

// CatalogJSON renders the catalog in its canonical byte form: two-space
// indentation, trailing newline. Byte-identical across processes of the
// same binary.
func CatalogJSON() ([]byte, error) {
	b, err := json.MarshalIndent(Catalog(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
