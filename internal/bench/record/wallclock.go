package record

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Wall-clock measurements live in their own artifact, deliberately apart
// from the pinned BENCH_<name>.json records: cycle counts are deterministic
// and gate at zero tolerance, wall time is a property of the host and never
// reproduces byte-for-byte. A WallFile is therefore never committed as a
// pin and never feeds the regression gate — it is the measured companion
// the report renders next to the deterministic numbers (the ns/sim-cycle
// column), and the CI bench-wallclock job's informational artifact.

// WallSchemaVersion is bumped whenever the wall-clock layout changes
// incompatibly.
const WallSchemaVersion = 1

// WallFilename is the canonical name runWallclock writes and oldenreport's
// -wallclock flag defaults to reading.
const WallFilename = "WALLCLOCK.json"

// WallRecord is one wall-clock measurement: a kernel under one
// configuration, timed end to end over the simulated region. Cycles is
// deterministic; WallNs is the best (minimum) of Runs repetitions, the
// standard way to strip scheduler and cache noise from a point sample.
type WallRecord struct {
	Benchmark string `json:"benchmark"`
	Procs     int    `json:"procs"`
	Scheme    string `json:"scheme"`
	Scale     int    `json:"scale"`
	Runs      int    `json:"runs"`
	Cycles    int64  `json:"cycles"`
	WallNs    int64  `json:"wall_ns"`
}

// Key names the configuration within a wall file.
func (r WallRecord) Key() string {
	return fmt.Sprintf("%s P=%d scheme=%s", r.Benchmark, r.Procs, r.Scheme)
}

// NsPerCycle is the metric the report renders: wall-clock nanoseconds the
// simulator spends per simulated cycle. Lower is a faster simulator; the
// simulated program is unchanged by construction.
func (r WallRecord) NsPerCycle() float64 {
	if r.Cycles <= 0 {
		return 0
	}
	return float64(r.WallNs) / float64(r.Cycles)
}

// WallFile is the on-disk wall-clock artifact: every measured
// configuration from one `oldenbench -wallclock` invocation.
type WallFile struct {
	Schema  int          `json:"schema"`
	Records []WallRecord `json:"records"`
}

// Geomean returns the geometric mean ns/sim-cycle across all records —
// the single number EXPERIMENTS.md tracks across hot-path work.
func (f WallFile) Geomean() float64 {
	var sum float64
	var n int
	for _, r := range f.Records {
		if v := r.NsPerCycle(); v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Marshal renders the file sorted by key with two-space indentation and a
// trailing newline. (Stable ordering for readable diffs; the values
// themselves are wall-clock and will differ run to run.)
func (f WallFile) Marshal() ([]byte, error) {
	f.Schema = WallSchemaVersion
	sort.Slice(f.Records, func(i, j int) bool {
		a, b := f.Records[i], f.Records[j]
		if a.Benchmark != b.Benchmark {
			return benchLess(a.Benchmark, b.Benchmark)
		}
		return a.Key() < b.Key()
	})
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// SaveWall writes the file to path in its canonical form.
func (f WallFile) SaveWall(path string) error {
	b, err := f.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadWall reads one wall-clock file and checks its schema.
func LoadWall(path string) (WallFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return WallFile{}, err
	}
	var f WallFile
	if err := json.Unmarshal(b, &f); err != nil {
		return WallFile{}, fmt.Errorf("record: %s: %w", path, err)
	}
	if f.Schema != WallSchemaVersion {
		return WallFile{}, fmt.Errorf("record: %s: wall schema %d, want %d (re-measure with oldenbench -wallclock)",
			path, f.Schema, WallSchemaVersion)
	}
	return f, nil
}
