package record

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/machine"
)

func sampleFile() File {
	mk := func(base bool, procs int, scheme, mode string, cycles int64, miss float64) RunRecord {
		return RunRecord{
			Benchmark: "treeadd", Baseline: base, Procs: procs,
			Scheme: scheme, Mode: mode, Scale: 16,
			Cycles: cycles, Verified: true, Pages: 12,
			Stats:   machine.StatsSnapshot{RemoteReads: 100, Misses: int64(miss)},
			MissPct: miss,
			Metrics: map[string]int64{"olden_migrations_total": 3},
		}
	}
	return File{
		Benchmark: "treeadd", Choice: "M",
		Records: []RunRecord{
			mk(true, 1, "local", "heuristic", 1000, 0),
			mk(false, 4, "local", "heuristic", 400, 2.5),
			mk(false, 4, "global", "heuristic", 420, 1.5),
			mk(false, 4, "bilateral", "heuristic", 410, 2.0),
			mk(false, 4, "local", "migrate-only", 900, 0),
		},
	}
}

func TestMarshalIsByteStable(t *testing.T) {
	f := sampleFile()
	a, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two marshals of the same file differ")
	}
	if a[len(a)-1] != '\n' {
		t.Fatal("canonical form must end in a newline")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := sampleFile()
	if err := f.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(filepath.Join(dir, Filename("treeadd")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", got.Schema, SchemaVersion)
	}
	// Re-saving the loaded file must reproduce the original bytes.
	want, _ := f.Marshal()
	back, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, back) {
		t.Fatal("load/marshal round trip changed the bytes")
	}
	r, ok := got.Lookup("baseline")
	if !ok || r.Cycles != 1000 {
		t.Fatalf("baseline lookup = %+v, %v", r, ok)
	}
	if _, ok := got.Lookup(HeuristicKey(4, "global")); !ok {
		t.Fatal("global heuristic record missing after round trip")
	}

	// LoadDir finds the file and orders benchmarks as in Table 1.
	power := f
	power.Benchmark = "power"
	if err := power.Save(dir); err != nil {
		t.Fatal(err)
	}
	files, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].Benchmark != "treeadd" || files[1].Benchmark != "power" {
		t.Fatalf("LoadDir order = %v, want [treeadd power]", files)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("LoadDir on an empty directory must error")
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	f := sampleFile()
	if err := f.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, Filename("treeadd"))
	loaded, _ := Load(path)
	loaded.Schema = SchemaVersion // Save overwrites; corrupt it on disk instead
	b, _ := loaded.Marshal()
	bad := bytes.Replace(b, []byte(`"schema": 1`), []byte(`"schema": 99`), 1)
	if bytes.Equal(bad, b) {
		t.Fatal("test bug: schema field not found")
	}
	writeFile(t, path, bad)
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("Load with wrong schema: err = %v, want schema error", err)
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	regs, err := Compare(sampleFile(), sampleFile(), Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("identical files produced regressions: %v", regs)
	}
}

func TestCompareCatchesSlowedRun(t *testing.T) {
	base := sampleFile()
	cand := sampleFile()
	// A deliberately slowed candidate: +1 cycle on the P=4 run. With the
	// deterministic simulator and zero tolerance, even one cycle fails.
	for i := range cand.Records {
		if cand.Records[i].Key() == HeuristicKey(4, "local") {
			cand.Records[i].Cycles++
		}
	}
	regs, err := Compare(base, cand, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "cycles" || regs[0].Key != HeuristicKey(4, "local") {
		t.Fatalf("regressions = %v, want one cycles regression on the P=4 local run", regs)
	}
	if !strings.Contains(regs[0].String(), "cycles") {
		t.Fatalf("regression string %q should name the metric", regs[0])
	}

	// The same delta passes under a 2% tolerance.
	regs, err = Compare(base, cand, Tolerance{CyclesFrac: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("1-cycle delta should pass a 2%% tolerance, got %v", regs)
	}
}

func TestCompareCatchesMissRateAndVerification(t *testing.T) {
	base := sampleFile()
	cand := sampleFile()
	for i := range cand.Records {
		if cand.Records[i].Key() == HeuristicKey(4, "global") {
			cand.Records[i].MissPct += 0.5
			cand.Records[i].Verified = false
		}
	}
	regs, err := Compare(base, cand, Tolerance{MissPctAbs: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var metrics []string
	for _, r := range regs {
		metrics = append(metrics, r.Metric)
	}
	if len(regs) != 2 || metrics[0] != "verified" || metrics[1] != "miss_pct" {
		t.Fatalf("regressions = %v, want verified + miss_pct", regs)
	}
}

func TestCompareStructuralErrors(t *testing.T) {
	base := sampleFile()

	missing := sampleFile()
	missing.Records = missing.Records[:3]
	if _, err := Compare(base, missing, Tolerance{}); err == nil {
		t.Fatal("missing configuration must be an error, not a pass")
	}

	scaled := sampleFile()
	for i := range scaled.Records {
		scaled.Records[i].Scale = 8
	}
	if _, err := Compare(base, scaled, Tolerance{}); err == nil || !strings.Contains(err.Error(), "scale") {
		t.Fatalf("scale mismatch: err = %v, want scale error", err)
	}

	other := sampleFile()
	other.Benchmark = "power"
	if _, err := Compare(base, other, Tolerance{}); err == nil {
		t.Fatal("benchmark mismatch must be an error")
	}
}

func TestCompareDirs(t *testing.T) {
	base := []File{sampleFile()}
	cand := []File{sampleFile()}
	regs, err := CompareDirs(base, cand, Tolerance{})
	if err != nil || len(regs) != 0 {
		t.Fatalf("CompareDirs identical = %v, %v", regs, err)
	}
	if _, err := CompareDirs(base, nil, Tolerance{}); err == nil {
		t.Fatal("missing benchmark in candidate set must be an error")
	}
}

func TestPaperTables(t *testing.T) {
	if s, ok := PaperSpeedup("treeadd", 4); !ok || s != 2.93 {
		t.Fatalf("PaperSpeedup(treeadd, 4) = %v, %v; want 2.93", s, ok)
	}
	if s, ok := PaperSpeedup("health", 32); !ok || s != 16.42 {
		t.Fatalf("PaperSpeedup(health, 32) = %v, %v; want 16.42", s, ok)
	}
	if _, ok := PaperSpeedup("treeadd", 3); ok {
		t.Fatal("P=3 is not a paper machine size")
	}
	if _, ok := PaperSpeedup("nosuch", 4); ok {
		t.Fatal("unknown benchmark should not resolve")
	}
	if s, ok := PaperMigrateOnly("em3d"); !ok || s != 0.05 {
		t.Fatalf("PaperMigrateOnly(em3d) = %v, %v; want 0.05", s, ok)
	}
	if _, ok := PaperMigrateOnly("treeadd"); ok {
		t.Fatal("paper prints a dash for treeadd M-only")
	}
	// Every Table 1 benchmark has a published speedup row.
	for name := range table1Order {
		if _, ok := PaperSpeedup(name, 4); !ok {
			t.Errorf("no paper row for %s", name)
		}
	}
}

func TestRenderReport(t *testing.T) {
	cur := []File{sampleFile()}
	prev := []File{sampleFile()}
	// Make the previous baseline slower so Δ prev is a real percentage.
	for i := range prev[0].Records {
		if prev[0].Records[i].Key() == HeuristicKey(4, "local") {
			prev[0].Records[i].Cycles = 500
		}
	}
	out := Report(cur, prev, 4, nil)
	for _, want := range []string{"Table 2", "treeadd", "2.93", "-20.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// treeadd is choice M, so Table 3 has no rows; an M+C file gets one.
	mc := sampleFile()
	mc.Benchmark, mc.Choice = "em3d", "M+C"
	for i := range mc.Records {
		mc.Records[i].Benchmark = "em3d"
	}
	out = Table3Markdown([]File{mc}, nil, 4)
	if !strings.Contains(out, "em3d") || !strings.Contains(out, "2.50") {
		t.Errorf("Table 3 should list em3d's local miss rate:\n%s", out)
	}
	// First pin: no previous baselines, Δ prev renders as a dash.
	out = Table2Markdown(cur, nil, 4)
	if !strings.Contains(out, "| — |") {
		t.Errorf("first pin should dash the delta column:\n%s", out)
	}
	regs := []Regression{{Benchmark: "treeadd", Key: "baseline", Metric: "cycles", Old: 1, New: 2, Limit: 1}}
	if out := Report(cur, nil, 4, regs); !strings.Contains(out, "## Regressions") {
		t.Errorf("report with regressions must include the gate section:\n%s", out)
	}
}

func writeFile(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
