package record

// Published Table 2 speedups from Carlisle & Rogers (PPoPP'95), transcribed
// in EXPERIMENTS.md. These anchor oldenreport's Δ-paper column: how far the
// reproduction's speedup at a given machine size sits from the published
// number on the CM-5. Machine sizes run P = 1, 2, 4, 8, 16, 32; the final
// column is the migrate-only speedup at 32 processors (negative sentinel
// when the paper prints a dash, see paperMigrateOnly).
var paperTable2 = map[string][6]float64{
	"treeadd":   {0.73, 1.47, 2.93, 5.90, 11.81, 23.4},
	"power":     {0.96, 1.94, 3.81, 6.92, 14.85, 27.5},
	"tsp":       {0.95, 1.92, 3.70, 6.70, 10.08, 15.8},
	"mst":       {0.96, 1.36, 2.20, 3.43, 4.56, 5.14},
	"bisort":    {0.73, 1.35, 2.29, 3.52, 4.92, 6.33},
	"voronoi":   {0.75, 1.38, 2.41, 4.23, 6.88, 8.76},
	"em3d":      {0.86, 1.51, 2.69, 4.48, 6.72, 12.0},
	"barneshut": {0.74, 1.42, 3.00, 5.29, 8.13, 11.2},
	"perimeter": {0.86, 1.70, 3.37, 6.09, 9.86, 14.1},
	"health":    {0.73, 1.47, 2.93, 5.72, 11.09, 16.42},
}

// paperMigrateOnly is the M-only(32) column; the paper prints a dash for
// the pure-migration benchmarks (their heuristic run IS migrate-only) and
// "<0.01" for barneshut, stored here as its upper bound.
var paperMigrateOnly = map[string]float64{
	"bisort":    6.13,
	"voronoi":   0.47,
	"em3d":      0.05,
	"barneshut": 0.01,
	"perimeter": 2.96,
	"health":    16.52,
}

// PaperSpeedup returns the published Table 2 speedup for a benchmark at a
// machine size, when the paper reports one (P must be a power of two in
// 1..32).
func PaperSpeedup(bench string, procs int) (float64, bool) {
	row, ok := paperTable2[bench]
	if !ok {
		return 0, false
	}
	idx := -1
	for i, p := 0, 1; p <= 32; i, p = i+1, p*2 {
		if p == procs {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, false
	}
	return row[idx], true
}

// PaperMigrateOnly returns the published migrate-only speedup at 32
// processors, when the paper reports one.
func PaperMigrateOnly(bench string) (float64, bool) {
	v, ok := paperMigrateOnly[bench]
	return v, ok
}
