// Package record defines the persistent benchmark record format: one
// versioned JSON file per benchmark (BENCH_<name>.json) holding the
// simulated-cycle makespan, statistics snapshot, and metrics dump of a
// small suite of pinned configurations. Because the simulator is
// deterministic in virtual time, two runs of the same binary produce
// byte-identical records, so a comparator can gate on exact cycle deltas.
package record

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/machine"
)

// SchemaVersion is bumped whenever the record layout changes incompatibly;
// Load rejects files written under a different schema so a stale pin fails
// loudly instead of producing nonsense deltas.
const SchemaVersion = 1

// RunRecord captures one benchmark run: its full configuration and every
// observable the tables are built from. All fields are deterministic
// functions of (benchmark, configuration) — nothing wall-clock derived.
type RunRecord struct {
	Benchmark string `json:"benchmark"`
	Baseline  bool   `json:"baseline,omitempty"`
	Procs     int    `json:"procs"`
	Scheme    string `json:"scheme"`
	Mode      string `json:"mode"`
	Scale     int    `json:"scale"`

	// Cycles is the simulated makespan of the timed region — the number
	// the perf gate compares exactly.
	Cycles   int64 `json:"cycles"`
	Verified bool  `json:"verified"`
	Pages    int64 `json:"pages"`

	Stats   machine.StatsSnapshot `json:"stats"`
	MissPct float64               `json:"miss_pct"`

	// Metrics is the flattened registry dump (internal/metrics
	// Snapshot.Flat): counter values, histogram counts/sums/buckets.
	Metrics map[string]int64 `json:"metrics,omitempty"`

	// TraceDigest is the run's event-stream digest in the golden format;
	// it pins the full event sequence, not just the aggregates.
	TraceDigest string `json:"trace_digest,omitempty"`
}

// Key names the configuration within a file. The baseline is singular;
// parallel runs are distinguished by machine size, scheme and mode.
func (r RunRecord) Key() string {
	if r.Baseline {
		return "baseline"
	}
	return fmt.Sprintf("P=%d scheme=%s mode=%s", r.Procs, r.Scheme, r.Mode)
}

// File is the persistent per-benchmark record: BENCH_<name>.json.
type File struct {
	Schema    int         `json:"schema"`
	Benchmark string      `json:"benchmark"`
	Choice    string      `json:"choice"`
	Whole     bool        `json:"whole,omitempty"`
	Records   []RunRecord `json:"records"`
}

// Lookup finds the record with the given configuration key.
func (f File) Lookup(key string) (RunRecord, bool) {
	for _, r := range f.Records {
		if r.Key() == key {
			return r, true
		}
	}
	return RunRecord{}, false
}

// HeuristicKey is the key of the parallel heuristic run at P under scheme.
func HeuristicKey(procs int, scheme string) string {
	return fmt.Sprintf("P=%d scheme=%s mode=heuristic", procs, scheme)
}

// MigrateOnlyKey is the key of the forced-migration run at P.
func MigrateOnlyKey(procs int) string {
	return fmt.Sprintf("P=%d scheme=local mode=migrate-only", procs)
}

// Filename returns the canonical file name for a benchmark's records.
func Filename(bench string) string { return "BENCH_" + bench + ".json" }

// Marshal renders the file in its canonical byte form: sorted records,
// two-space indentation, trailing newline. Byte-identical across reruns of
// the same binary, so pinned baselines diff cleanly.
func (f File) Marshal() ([]byte, error) {
	f.Schema = SchemaVersion
	sort.Slice(f.Records, func(i, j int) bool {
		return f.Records[i].Key() < f.Records[j].Key()
	})
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Save writes the file into dir under its canonical name.
func (f File) Save(dir string) error {
	b, err := f.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, Filename(f.Benchmark)), b, 0o644)
}

// Load reads one record file and checks its schema.
func Load(path string) (File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return File{}, fmt.Errorf("record: %s: %w", path, err)
	}
	if f.Schema != SchemaVersion {
		return File{}, fmt.Errorf("record: %s: schema %d, want %d (re-pin with oldenbench -update)",
			path, f.Schema, SchemaVersion)
	}
	return f, nil
}

// LoadDir reads every BENCH_*.json in dir, returned in Table 1 order.
func LoadDir(dir string) ([]File, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var files []File
	for _, p := range paths {
		f, err := Load(p)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool {
		return benchLess(files[i].Benchmark, files[j].Benchmark)
	})
	if len(files) == 0 {
		return nil, fmt.Errorf("record: no BENCH_*.json files in %s", dir)
	}
	return files, nil
}

// table1Order is the paper's benchmark order, used everywhere records are
// listed. (Duplicated from the bench registry, which this package cannot
// import without a cycle.)
var table1Order = map[string]int{
	"treeadd": 0, "power": 1, "tsp": 2, "mst": 3, "bisort": 4,
	"voronoi": 5, "em3d": 6, "barneshut": 7, "perimeter": 8, "health": 9,
}

func benchLess(a, b string) bool {
	oa, aok := table1Order[a]
	ob, bok := table1Order[b]
	switch {
	case aok && bok:
		return oa < ob
	case aok:
		return true
	case bok:
		return false
	default:
		return strings.Compare(a, b) < 0
	}
}
