package record

import (
	"fmt"
	"strings"
)

// This file renders pinned record sets as markdown: the reproduction's
// Table 2 and Table 3, each row annotated with the delta against the
// previous pinned baseline (did this change regress anything?) and — for
// Table 2 — against the paper's published speedup (how faithful is the
// reproduction?).

func pct(new, old float64) string {
	if old == 0 {
		return "—"
	}
	d := 100 * (new - old) / old
	if d == 0 {
		return "0%"
	}
	return fmt.Sprintf("%+.2f%%", d)
}

// Table2Markdown renders one row per benchmark from its pinned records at
// machine size procs. prev may be nil (first pin) or hold the previous
// baseline set for the Δ-prev column.
func Table2Markdown(cur, prev []File, procs int) string {
	prevBy := make(map[string]File, len(prev))
	for _, f := range prev {
		prevBy[f.Benchmark] = f
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "## Table 2 — speedups at P=%d\n\n", procs)
	sb.WriteString("| Benchmark | Choice | Seq cycles | P cycles | Δ prev | S(P) | Paper S(P) | Δ paper | M-only S(P) |\n")
	sb.WriteString("|---|---|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, f := range cur {
		base, okB := f.Lookup("baseline")
		heur, okH := f.Lookup(HeuristicKey(procs, "local"))
		monly, okM := f.Lookup(MigrateOnlyKey(procs))
		if !okB || !okH {
			fmt.Fprintf(&sb, "| %s | %s | _missing records_ | | | | | | |\n", f.Benchmark, f.Choice)
			continue
		}
		choice := f.Choice
		if f.Whole {
			choice += " W"
		}
		speedup := float64(base.Cycles) / float64(heur.Cycles)

		dPrev := "—"
		if pf, ok := prevBy[f.Benchmark]; ok {
			if ph, ok := pf.Lookup(HeuristicKey(procs, "local")); ok && ph.Scale == heur.Scale {
				dPrev = pct(float64(heur.Cycles), float64(ph.Cycles))
			}
		}
		paperS, dPaper := "—", "—"
		if ps, ok := PaperSpeedup(f.Benchmark, procs); ok {
			paperS = fmt.Sprintf("%.2f", ps)
			dPaper = pct(speedup, ps)
		}
		mo := "—"
		if okM {
			mo = fmt.Sprintf("%.2f", float64(base.Cycles)/float64(monly.Cycles))
		}
		fmt.Fprintf(&sb, "| %s | %s | %d | %d | %s | %.2f | %s | %s | %s |\n",
			f.Benchmark, choice, base.Cycles, heur.Cycles, dPrev, speedup, paperS, dPaper, mo)
	}
	if len(cur) > 0 {
		scale := 0
		if r, ok := cur[0].Lookup("baseline"); ok {
			scale = r.Scale
		}
		fmt.Fprintf(&sb, "\nScale 1/%d of the paper's problem sizes; paper speedups are the CM-5 numbers at the same P.\n", scale)
	}
	return sb.String()
}

// Table3Markdown renders caching statistics for the migrate-and-cache
// benchmarks from their pinned records: reference counts under local
// knowledge, miss rates under all three schemes, and the cumulative page
// count, with Δ-prev on the miss rate that drives the gate.
func Table3Markdown(cur, prev []File, procs int) string {
	prevBy := make(map[string]File, len(prev))
	for _, f := range prev {
		prevBy[f.Benchmark] = f
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "## Table 3 — caching statistics at P=%d\n\n", procs)
	sb.WriteString("| Benchmark | CacheWr (1k) | %Remote | CacheRd (1k) | %Remote | miss% local | miss% global | miss% bilateral | Δ prev (local) | Pages |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, f := range cur {
		if f.Choice != "M+C" {
			continue
		}
		local, okL := f.Lookup(HeuristicKey(procs, "local"))
		global, okG := f.Lookup(HeuristicKey(procs, "global"))
		bilat, okB := f.Lookup(HeuristicKey(procs, "bilateral"))
		if !okL || !okG || !okB {
			fmt.Fprintf(&sb, "| %s | _missing records_ | | | | | | | | |\n", f.Benchmark)
			continue
		}
		s := local.Stats
		pctW, pctR := 0.0, 0.0
		if s.CacheableWrites > 0 {
			pctW = 100 * float64(s.RemoteWrites) / float64(s.CacheableWrites)
		}
		if s.CacheableReads > 0 {
			pctR = 100 * float64(s.RemoteReads) / float64(s.CacheableReads)
		}
		dPrev := "—"
		if pf, ok := prevBy[f.Benchmark]; ok {
			if pl, ok := pf.Lookup(HeuristicKey(procs, "local")); ok && pl.Scale == local.Scale {
				dPrev = pct(local.MissPct, pl.MissPct)
			}
		}
		fmt.Fprintf(&sb, "| %s | %.1f | %.3f | %.1f | %.3f | %.2f | %.2f | %.2f | %s | %d |\n",
			f.Benchmark,
			float64(s.CacheableWrites)/1000, pctW,
			float64(s.CacheableReads)/1000, pctR,
			local.MissPct, global.MissPct, bilat.MissPct, dPrev, local.Pages)
	}
	return sb.String()
}

// WallMarkdown renders a wall-clock measurement set as the report's
// simulator-throughput section: one row per measured configuration with
// the simulated makespan, the measured wall time, and the ns/sim-cycle
// quotient, closed by the geometric-mean summary line EXPERIMENTS.md
// tracks. Wall numbers are host-dependent; the section is informational
// and never part of the regression gate.
func WallMarkdown(f WallFile) string {
	var sb strings.Builder
	sb.WriteString("## Simulator throughput — wall clock\n\n")
	sb.WriteString("| Benchmark | P | Scheme | Scale | Sim cycles | Wall ms | ns/sim-cycle |\n")
	sb.WriteString("|---|---:|---|---:|---:|---:|---:|\n")
	for _, r := range f.Records {
		fmt.Fprintf(&sb, "| %s | %d | %s | 1/%d | %d | %.2f | %.1f |\n",
			r.Benchmark, r.Procs, r.Scheme, r.Scale,
			r.Cycles, float64(r.WallNs)/1e6, r.NsPerCycle())
	}
	if g := f.Geomean(); g > 0 {
		fmt.Fprintf(&sb, "\nGeomean: %.1f ns/sim-cycle over %d configurations "+
			"(best of %d runs each; wall time is host-dependent and not gated).\n",
			g, len(f.Records), wallRuns(f))
	}
	return sb.String()
}

// wallRuns reports the repetition count the measurements used (they are
// uniform within one oldenbench invocation; fall back to the first).
func wallRuns(f WallFile) int {
	if len(f.Records) == 0 {
		return 0
	}
	return f.Records[0].Runs
}

// Report renders the full baseline report: both tables plus a gate summary
// when regressions are present.
func Report(cur, prev []File, procs int, regs []Regression) string {
	var sb strings.Builder
	sb.WriteString("# Olden benchmark baselines\n\n")
	sb.WriteString(Table2Markdown(cur, prev, procs))
	sb.WriteString("\n")
	sb.WriteString(Table3Markdown(cur, prev, procs))
	if len(regs) > 0 {
		sb.WriteString("\n## Regressions\n\n")
		for _, r := range regs {
			fmt.Fprintf(&sb, "- %s\n", r)
		}
	}
	return sb.String()
}
