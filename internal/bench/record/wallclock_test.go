package record

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func wallFixture() WallFile {
	return WallFile{Records: []WallRecord{
		{Benchmark: "power", Procs: 4, Scheme: "local", Scale: 16, Runs: 3, Cycles: 2_000_000, WallNs: 8_000_000},
		{Benchmark: "treeadd", Procs: 4, Scheme: "local", Scale: 16, Runs: 3, Cycles: 1_000_000, WallNs: 1_000_000},
	}}
}

func TestWallNsPerCycle(t *testing.T) {
	r := WallRecord{Cycles: 4, WallNs: 10}
	if got := r.NsPerCycle(); got != 2.5 {
		t.Fatalf("NsPerCycle = %v; want 2.5", got)
	}
	if got := (WallRecord{Cycles: 0, WallNs: 10}).NsPerCycle(); got != 0 {
		t.Fatalf("NsPerCycle with zero cycles = %v; want 0", got)
	}
}

func TestWallGeomean(t *testing.T) {
	// 1 ns/cycle and 4 ns/cycle: geomean 2.
	f := wallFixture()
	if got := f.Geomean(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Geomean = %v; want 2", got)
	}
	if got := (WallFile{}).Geomean(); got != 0 {
		t.Fatalf("empty Geomean = %v; want 0", got)
	}
}

func TestWallSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, WallFilename)
	f := wallFixture()
	if err := f.SaveWall(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWall(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != WallSchemaVersion || len(got.Records) != 2 {
		t.Fatalf("round trip: schema=%d records=%d", got.Schema, len(got.Records))
	}
	// Marshal sorts by Table 1 order: treeadd before power.
	if got.Records[0].Benchmark != "treeadd" || got.Records[1].Benchmark != "power" {
		t.Fatalf("records not in table order: %v, %v", got.Records[0].Benchmark, got.Records[1].Benchmark)
	}
}

func TestWallLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, WallFilename)
	if err := os.WriteFile(path, []byte(`{"schema": 99, "records": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWall(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("LoadWall on wrong schema: err = %v", err)
	}
}

func TestWallMarkdown(t *testing.T) {
	md := WallMarkdown(wallFixture())
	for _, want := range []string{
		"## Simulator throughput — wall clock",
		"ns/sim-cycle",
		"| treeadd | 4 | local | 1/16 | 1000000 | 1.00 | 1.0 |",
		"| power | 4 | local | 1/16 | 2000000 | 8.00 | 4.0 |",
		"Geomean: 2.0 ns/sim-cycle over 2 configurations",
		"best of 3 runs",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("WallMarkdown missing %q in:\n%s", want, md)
		}
	}
}
