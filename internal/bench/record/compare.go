package record

import "fmt"

// Tolerance bounds how much a candidate may degrade before the gate fails.
// The simulator is deterministic, so the zero tolerance — any cycle
// increase at all fails — is a meaningful and usable default; non-zero
// tolerances exist for intentional-but-small cost-model adjustments.
type Tolerance struct {
	// CyclesFrac is the allowed fractional increase in simulated cycles
	// (0.02 = 2%).
	CyclesFrac float64
	// MissPctAbs is the allowed absolute increase in cache-miss
	// percentage points.
	MissPctAbs float64
}

// Regression is one gate failure: a candidate configuration got worse than
// its pinned baseline by more than the tolerance allows.
type Regression struct {
	Benchmark string
	Key       string
	Metric    string // "cycles", "miss_pct", or "verified"
	Old, New  float64
	Limit     float64 // the threshold the new value crossed
}

func (r Regression) String() string {
	if r.Metric == "verified" {
		return fmt.Sprintf("%s [%s]: run no longer verifies against the sequential reference",
			r.Benchmark, r.Key)
	}
	return fmt.Sprintf("%s [%s]: %s %.6g -> %.6g (limit %.6g)",
		r.Benchmark, r.Key, r.Metric, r.Old, r.New, r.Limit)
}

// Compare gates candidate against baseline. It returns one Regression per
// configuration-metric that degraded beyond tol, and an error for
// structural problems (benchmark mismatch, a baseline configuration
// missing from the candidate, or runs at different scales — deltas across
// scales are meaningless).
func Compare(baseline, candidate File, tol Tolerance) ([]Regression, error) {
	if baseline.Benchmark != candidate.Benchmark {
		return nil, fmt.Errorf("record: comparing %q against %q",
			candidate.Benchmark, baseline.Benchmark)
	}
	var regs []Regression
	for _, base := range baseline.Records {
		key := base.Key()
		cand, ok := candidate.Lookup(key)
		if !ok {
			return nil, fmt.Errorf("record: %s: configuration %q missing from candidate",
				baseline.Benchmark, key)
		}
		if cand.Scale != base.Scale {
			return nil, fmt.Errorf("record: %s [%s]: scale 1/%d vs baseline 1/%d — re-pin or rerun at matching scale",
				baseline.Benchmark, key, cand.Scale, base.Scale)
		}
		if !cand.Verified {
			regs = append(regs, Regression{
				Benchmark: baseline.Benchmark, Key: key, Metric: "verified",
			})
		}
		limit := float64(base.Cycles) * (1 + tol.CyclesFrac)
		if float64(cand.Cycles) > limit {
			regs = append(regs, Regression{
				Benchmark: baseline.Benchmark, Key: key, Metric: "cycles",
				Old: float64(base.Cycles), New: float64(cand.Cycles), Limit: limit,
			})
		}
		if missLimit := base.MissPct + tol.MissPctAbs; cand.MissPct > missLimit {
			regs = append(regs, Regression{
				Benchmark: baseline.Benchmark, Key: key, Metric: "miss_pct",
				Old: base.MissPct, New: cand.MissPct, Limit: missLimit,
			})
		}
	}
	return regs, nil
}

// CompareDirs gates a candidate set against a baseline set, matching files
// by benchmark name. Every baseline benchmark must be present in the
// candidate set.
func CompareDirs(baseline, candidate []File, tol Tolerance) ([]Regression, error) {
	byName := make(map[string]File, len(candidate))
	for _, f := range candidate {
		byName[f.Benchmark] = f
	}
	var regs []Regression
	for _, base := range baseline {
		cand, ok := byName[base.Benchmark]
		if !ok {
			return nil, fmt.Errorf("record: benchmark %q missing from candidate set", base.Benchmark)
		}
		r, err := Compare(base, cand, tol)
		if err != nil {
			return nil, err
		}
		regs = append(regs, r...)
	}
	return regs, nil
}
