package bench_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/trace"

	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/treeadd"
)

// schemes enumerates the three coherence schemes of Appendix A by the
// names the CLI uses.
var schemes = []struct {
	name string
	kind coherence.Kind
}{
	{"local", coherence.LocalKnowledge},
	{"global", coherence.GlobalKnowledge},
	{"bilateral", coherence.Bilateral},
}

// tracedRun executes one benchmark with the recorder attached and returns
// the trace digest alongside the result.
func tracedRun(t *testing.T, name string, procs int, kind coherence.Kind) (trace.Digest, bench.Result) {
	t.Helper()
	info, ok := bench.Get(name)
	if !ok {
		t.Fatalf("benchmark %q not registered", name)
	}
	rec := trace.New(0)
	res := info.Run(bench.Config{Procs: procs, Scheme: kind, Trace: rec})
	if !res.Verified() {
		t.Fatalf("%s failed verification: %#x != %#x", name, res.Check, res.WantCheck)
	}
	return rec.Digest(), res
}

// TestDeterministicReplay runs treeadd and em3d twice at P=4 under each
// coherence scheme and requires byte-identical trace digests and
// statistics. Any divergence means the simulation picked up a real-time
// dependence — goroutine scheduling, map iteration order — that the
// virtual-time scheduler is supposed to exclude.
func TestDeterministicReplay(t *testing.T) {
	for _, name := range []string{"treeadd", "em3d"} {
		for _, s := range schemes {
			t.Run(name+"/"+s.name, func(t *testing.T) {
				d1, r1 := tracedRun(t, name, 4, s.kind)
				d2, r2 := tracedRun(t, name, 4, s.kind)
				if d1 != d2 {
					t.Errorf("trace digest diverged between identical runs:\n  run 1: %s\n  run 2: %s", d1, d2)
				}
				if r1.Stats != r2.Stats {
					t.Errorf("statistics diverged between identical runs:\n  run 1: %+v\n  run 2: %+v", r1.Stats, r2.Stats)
				}
				if r1.Cycles != r2.Cycles {
					t.Errorf("makespan diverged: %d vs %d cycles", r1.Cycles, r2.Cycles)
				}
				if r1.Check != r2.Check {
					t.Errorf("checksum diverged: %#x vs %#x", r1.Check, r2.Check)
				}
			})
		}
	}
}
