package bench

import (
	"fmt"
	"strings"

	"repro/internal/coherence"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// This file regenerates the paper's tables and Figure 2 from the
// registered benchmarks. The caller must import the benchmark packages for
// their registration side effects (cmd/oldenbench and the repository-root
// benchmarks do).

// Table1 prints the benchmark descriptions (paper Table 1).
func Table1() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Benchmark Descriptions\n\n")
	fmt.Fprintf(&sb, "%-12s %-72s %s\n", "Benchmark", "Description", "Problem Size")
	for _, name := range Names() {
		info, _ := Get(name)
		fmt.Fprintf(&sb, "%-12s %-72s %s\n", name, info.Description, info.PaperSize)
	}
	return sb.String()
}

// Table2 reproduces the paper's Table 2: per benchmark, the heuristic
// choice, baseline cycles, speedups at each machine size, and the
// migrate-only speedup at the largest size.
func Table2(procs []int, scale int, scheme coherence.Kind) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: Results (scale 1/%d of the paper's sizes, %s coherence)\n\n", normScale(scale), scheme)
	fmt.Fprintf(&sb, "%-12s %-7s %-12s", "Benchmark", "Choice", "Seq cycles")
	for _, p := range procs {
		fmt.Fprintf(&sb, " P=%-5d", p)
	}
	maxP := procs[len(procs)-1]
	fmt.Fprintf(&sb, " M-only(%d)\n", maxP)
	for _, name := range Names() {
		info, _ := Get(name)
		base, sp, err := Speedup(name, procs, scheme, rt.Heuristic, scale)
		if err != nil {
			return sb.String(), err
		}
		choice := info.Choice
		if info.Whole {
			choice += " W"
		}
		fmt.Fprintf(&sb, "%-12s %-7s %-12d", name, choice, base)
		for _, s := range sp {
			fmt.Fprintf(&sb, " %-7.2f", s)
		}
		mo := execute(info, Config{Procs: maxP, Scheme: scheme, Mode: rt.MigrateOnly, Scale: scale})
		if !mo.Verified() {
			return sb.String(), fmt.Errorf("%s migrate-only failed verification", name)
		}
		fmt.Fprintf(&sb, " %-7.2f\n", float64(base)/float64(mo.Cycles))
	}
	return sb.String(), nil
}

// mcBenchmarks are the six benchmarks that combine migration and caching
// (the rows of Table 3).
func mcBenchmarks() []string {
	var out []string
	for _, name := range Names() {
		if info, _ := Get(name); info.Choice == "M+C" {
			out = append(out, name)
		}
	}
	return out
}

// Table3 reproduces the paper's Table 3: caching statistics for the M+C
// benchmarks under each coherence scheme.
func Table3(procs, scale int) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: Caching Statistics on %d processors (scale 1/%d)\n\n", procs, normScale(scale))
	fmt.Fprintf(&sb, "%-12s %12s %8s %12s %8s   %s %8s\n",
		"Benchmark", "CacheWr(1k)", "%Remote", "CacheRd(1k)", "%Remote",
		"miss%% local/global/bilateral", "Pages")
	for _, name := range mcBenchmarks() {
		info, _ := Get(name)
		var miss [3]float64
		var local Result
		for i, scheme := range []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral} {
			res := execute(info, Config{Procs: procs, Scheme: scheme, Scale: scale})
			if !res.Verified() {
				return sb.String(), fmt.Errorf("%s under %s failed verification", name, scheme)
			}
			miss[i] = res.Stats.MissPct()
			if scheme == coherence.LocalKnowledge {
				local = res
			}
		}
		s := local.Stats
		pctW, pctR := 0.0, 0.0
		if s.CacheableWrites > 0 {
			pctW = 100 * float64(s.RemoteWrites) / float64(s.CacheableWrites)
		}
		if s.CacheableReads > 0 {
			pctR = 100 * float64(s.RemoteReads) / float64(s.CacheableReads)
		}
		fmt.Fprintf(&sb, "%-12s %12.1f %8.3f %12.1f %8.3f   %8.2f /%8.2f /%8.2f %8d\n",
			name,
			float64(s.CacheableWrites)/1000, pctW,
			float64(s.CacheableReads)/1000, pctR,
			miss[0], miss[1], miss[2], local.Pages)
	}
	return sb.String(), nil
}

func normScale(scale int) int {
	if scale <= 0 {
		return DefaultScale
	}
	return scale
}

// Figure2 reproduces the paper's Figure 2 analysis: an N-element list
// evenly divided among P processors, traversed under each mechanism for
// both layouts, reporting the communication counts against the closed
// forms (P−1 migrations blocked, N−1 cyclic; N(P−1)/P remote accesses
// cached).
func Figure2(n, p int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2: list distributions, N=%d items over P=%d processors\n\n", n, p)
	fmt.Fprintf(&sb, "%-9s %-9s %12s %12s %14s %12s\n",
		"layout", "mechanism", "migrations", "remote refs", "traversal cyc", "closed form")
	type layout struct {
		name   string
		procOf func(i int) int
	}
	layouts := []layout{
		{"blocked", func(i int) int { return BlockedProc(i, n, p) }},
		{"cyclic", func(i int) int { return CyclicProc(i, p) }},
	}
	for _, lay := range layouts {
		for _, mech := range []rt.Mechanism{rt.Migrate, rt.Cache} {
			r := rt.New(rt.Config{Procs: p})
			// Build the list.
			nodes := make([]gaddr.GP, n)
			for i := range nodes {
				nodes[i] = RawAlloc(r, lay.procOf(i), 16)
			}
			for i := range nodes {
				RawStore(r, nodes[i], 0, uint64(i))
				next := gaddr.Nil
				if i+1 < n {
					next = nodes[i+1]
				}
				RawStorePtr(r, nodes[i], 8, next)
			}
			site := &rt.Site{Name: "fig2.walk", Mech: mech}
			r.ResetForKernel()
			var cyc int64
			r.Run(0, func(t *rt.Thread) {
				for g := nodes[0]; !g.IsNil(); g = t.LoadPtr(site, g, 8) {
					t.LoadInt(site, g, 0)
					t.Work(10)
				}
			})
			cyc = r.M.Makespan()
			s := r.M.Stats.Snapshot()
			form := ""
			switch {
			case mech == rt.Migrate && lay.name == "blocked":
				form = fmt.Sprintf("P-1 = %d", p-1)
			case mech == rt.Migrate && lay.name == "cyclic":
				form = fmt.Sprintf("N-1 = %d", n-1)
			default:
				form = fmt.Sprintf("N(P-1)/P = %d", 2*n*(p-1)/p)
			}
			fmt.Fprintf(&sb, "%-9s %-9s %12d %12d %14d %12s\n",
				lay.name, mech, s.Migrations, s.RemoteReads+s.RemoteWrites, cyc, form)
		}
	}
	sb.WriteString("\nBlocked lists favour migration; cyclic lists favour caching —\nthe crossover the selection heuristic is built around (§4).\n")
	return sb.String()
}

// Curve prints one benchmark's full speedup curve under all three modes —
// the per-benchmark view behind Table 2's discussion paragraphs.
func Curve(name string, procs []int, scale int, scheme coherence.Kind) (string, error) {
	info, ok := Get(name)
	if !ok {
		return "", fmt.Errorf("unknown benchmark %q", name)
	}
	var sb strings.Builder
	base := execute(info, Config{Baseline: true, Scale: scale})
	if !base.Verified() {
		return "", fmt.Errorf("baseline failed verification")
	}
	fmt.Fprintf(&sb, "%s speedup curve (scale 1/%d, %s coherence; baseline %d cycles)\n\n",
		name, normScale(scale), scheme, base.Cycles)
	fmt.Fprintf(&sb, "%-6s %12s %14s %12s %10s %8s\n",
		"P", "heuristic", "migrate-only", "cache-only", "migrations", "miss%")
	for _, p := range procs {
		h := execute(info, Config{Procs: p, Scale: scale, Scheme: scheme})
		m := execute(info, Config{Procs: p, Scale: scale, Scheme: scheme, Mode: rt.MigrateOnly})
		c := execute(info, Config{Procs: p, Scale: scale, Scheme: scheme, Mode: rt.CacheOnly})
		for _, r := range []Result{h, m, c} {
			if !r.Verified() {
				return sb.String(), fmt.Errorf("P=%d failed verification", p)
			}
		}
		fmt.Fprintf(&sb, "%-6d %12.2f %14.2f %12.2f %10d %8.2f\n",
			p,
			float64(base.Cycles)/float64(h.Cycles),
			float64(base.Cycles)/float64(m.Cycles),
			float64(base.Cycles)/float64(c.Cycles),
			h.Stats.Migrations, h.Stats.MissPct())
	}
	return sb.String(), nil
}
