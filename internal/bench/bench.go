// Package bench is the shared harness for the ten Olden benchmarks
// (paper Table 1): registration, configuration, result reporting and the
// speedup methodology of Table 2.
package bench

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/rt"
	"repro/internal/trace"
)

// Config selects how one benchmark run executes.
type Config struct {
	// Procs is the simulated machine size (1..32 in the paper).
	Procs int
	// Scheme is the coherence scheme (Table 2 uses local knowledge;
	// Table 3 compares all three).
	Scheme coherence.Kind
	// Mode optionally overrides the heuristic's per-site mechanisms
	// (Table 2's last column forces MigrateOnly).
	Mode rt.Mode
	// Baseline runs the "true sequential implementation": one
	// processor, no pointer-test/future overhead. Procs is ignored.
	Baseline bool
	// Scale divides the paper's problem size: 1 reproduces Table 1's
	// sizes, 8 runs 1/8-size problems, etc. Zero means DefaultScale.
	Scale int
	// Trace, when non-nil, records the run's simulation events into the
	// given recorder. ResetForKernel (called by kernel-timed benchmarks)
	// clears it along with the statistics, so the recorded trace covers
	// exactly the timed region.
	Trace *trace.Recorder
	// Metrics, when non-nil, binds the run's counters into the given
	// registry. Like Trace it is cleared by ResetForKernel and charges no
	// simulated cycles: makespans are identical with or without it.
	Metrics *metrics.Registry
	// Sched selects the scheduler implementation (default: the
	// virtual-time event loop). The digest-equivalence battery sets
	// machine.SchedChannel to prove both schedulers replay the same run.
	Sched machine.SchedKind
	// RuntimeHook, when non-nil, observes the runtime a Run constructs
	// internally, right after creation. Differential tests use it to
	// fingerprint final heap contents; profilers use it for per-site
	// statistics.
	RuntimeHook func(*rt.Runtime)
	// OnPhase, when non-nil, brackets each execution phase RunPhased
	// goes through ("build", "restore_build", "kernel", or "run" for the
	// unphased fallback): it is called at phase start and the returned
	// func at phase end. The serving layer hangs per-phase tracing spans
	// off it; it runs on the host clock and charges no simulated cycles.
	OnPhase func(name string) func()
}

// DefaultScale keeps default runs comfortably fast; `-scale 1` in
// cmd/oldenbench reproduces the paper's sizes.
const DefaultScale = 16

func (c Config) normalize() Config {
	if c.Scale <= 0 {
		c.Scale = DefaultScale
	}
	if c.Baseline {
		c.Procs = 1
	}
	if c.Procs <= 0 {
		c.Procs = 1
	}
	return c
}

// NewRuntime builds the runtime for a run.
func (c Config) NewRuntime() *rt.Runtime { return c.NewRuntimeWithHeap(0) }

// NewRuntimeWithHeap builds the runtime with an explicit per-processor heap
// size (benchmarks at paper-scale sizes need more than the default).
func (c Config) NewRuntimeWithHeap(heapBytes uint32) *rt.Runtime {
	c = c.normalize()
	r := rt.New(rt.Config{
		Procs:            c.Procs,
		Scheme:           c.Scheme,
		Mode:             c.Mode,
		NoOverhead:       c.Baseline,
		HeapBytesPerProc: heapBytes,
		Sched:            c.Sched,
		Trace:            c.Trace,
		Metrics:          c.Metrics,
	})
	if c.RuntimeHook != nil {
		c.RuntimeHook(r)
	}
	return r
}

// Scaled divides a paper-scale quantity by the configured scale, keeping a
// sensible floor.
func (c Config) Scaled(paper, floor int) int {
	c = c.normalize()
	v := paper / c.Scale
	if v < floor {
		return floor
	}
	return v
}

// Result is the outcome of one benchmark run.
type Result struct {
	Name   string
	Procs  int
	Cycles int64 // makespan of the timed region
	Stats  machine.StatsSnapshot
	Pages  int64 // cumulative pages cached (Table 3)
	// Check and WantCheck are the parallel run's checksum and the
	// sequential reference's; equal means verified.
	Check     uint64
	WantCheck uint64
}

// Verified reports whether the run produced the reference answer.
func (r Result) Verified() bool { return r.Check == r.WantCheck }

// Info describes a registered benchmark for Table 1.
type Info struct {
	Name        string
	Description string
	PaperSize   string // problem size from Table 1
	Choice      string // "M" or "M+C", the heuristic choice in Table 2
	Whole       bool   // whole-program timing (the W rows)
	Run         func(Config) Result
	// Source is the benchmark's mini-C kernel (the package's
	// KernelSource), when it has one; the phase-slicing pass reads it.
	Source string
	// Phased exposes the benchmark's build/kernel split, when the
	// benchmark is kernel-timed. Run must be exactly Phased.Kernel
	// composed after Phased.Build on a fresh runtime.
	Phased *Phased
}

// Phased is a kernel-timed benchmark split at its ResetForKernel
// boundary, the seam the static phase plan certifies.
type Phased struct {
	// Build materializes the problem instance on the runtime (raw heap
	// API, no simulated accesses) and returns the build state the kernel
	// needs: addresses, sizes, the reference answer. The state must be
	// immutable and free of references to the runtime or configuration —
	// a later run with a different coherence scheme reuses it verbatim.
	Build func(Config, *rt.Runtime) any
	// Kernel calls ResetForKernel, runs and times the kernel, and
	// verifies the result. It must not mutate the build state.
	Kernel func(Config, *rt.Runtime, any) Result
}

var (
	regMu    sync.Mutex
	registry = map[string]Info{}
)

// Register enrolls a benchmark; called from each benchmark package's init.
func Register(info Info) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic("bench: duplicate benchmark " + info.Name)
	}
	registry[info.Name] = info
}

// Get returns a registered benchmark.
func Get(name string) (Info, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	info, ok := registry[name]
	return info, ok
}

// Names returns the registered benchmark names in Table 1's order where
// known, then alphabetically.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	order := map[string]int{
		"treeadd": 0, "power": 1, "tsp": 2, "mst": 3, "bisort": 4,
		"voronoi": 5, "em3d": 6, "barneshut": 7, "perimeter": 8, "health": 9,
	}
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// Speedup runs the benchmark sequentially (the baseline) and at each
// machine size, returning baseline cycles and speedups — one row of
// Table 2.
func Speedup(name string, procs []int, scheme coherence.Kind, mode rt.Mode, scale int) (int64, []float64, error) {
	info, ok := Get(name)
	if !ok {
		return 0, nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	base := execute(info, Config{Baseline: true, Scale: scale, Scheme: scheme})
	if !base.Verified() {
		return 0, nil, fmt.Errorf("bench: %s baseline check %#x != %#x", name, base.Check, base.WantCheck)
	}
	var sp []float64
	for _, p := range procs {
		res := execute(info, Config{Procs: p, Scheme: scheme, Mode: mode, Scale: scale})
		if !res.Verified() {
			return 0, nil, fmt.Errorf("bench: %s at P=%d check %#x != %#x", name, p, res.Check, res.WantCheck)
		}
		sp = append(sp, float64(base.Cycles)/float64(res.Cycles))
	}
	return base.Cycles, sp, nil
}
