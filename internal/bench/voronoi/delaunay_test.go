package voronoi

import (
	"math/rand"
	"sort"
	"testing"
)

func genTestPoints(n int, seed int64) ([]float64, []float64, []int32) {
	rng := rand.New(rand.NewSource(seed))
	px := make([]float64, n)
	py := make([]float64, n)
	ids := make([]int32, n)
	for i := range px {
		px[i] = rng.Float64()
		py[i] = rng.Float64()
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		i, j := ids[a], ids[b]
		if px[i] != px[j] {
			return px[i] < px[j]
		}
		return py[i] < py[j]
	})
	return px, py, ids
}

// TestDelaunayValidity checks structural and geometric properties of the
// triangulation on random point sets: edge-count bounds (Euler), symmetry
// of the quad-edge rings, and the empty-circumcircle property for every
// triangle (exhaustive at these sizes).
func TestDelaunayValidity(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8, 16, 50, 200} {
		px, py, ids := genTestPoints(n, int64(n))
		al := newMemAlg(px, py)
		delaunaySeq(al, ids)
		edges := al.alive()
		if n >= 3 {
			if len(edges) > 3*n-6 {
				t.Fatalf("n=%d: %d edges exceeds 3n-6", n, len(edges))
			}
			if len(edges) < n-1 {
				t.Fatalf("n=%d: %d edges below n-1", n, len(edges))
			}
		}
		// The Delaunay property: for every triangle formed by edges, no
		// other point lies inside its circumcircle. Enumerate triangles
		// via left faces of each directed edge.
		adj := map[[2]int32]bool{}
		for _, e := range edges {
			adj[[2]int32{e[0], e[1]}] = true
			adj[[2]int32{e[1], e[0]}] = true
		}
		for _, e := range edges {
			for k := int32(0); k < int32(n); k++ {
				if k == e[0] || k == e[1] {
					continue
				}
				if !adj[[2]int32{e[0], k}] || !adj[[2]int32{e[1], k}] {
					continue
				}
				// Triangle (e0, e1, k); orient ccw.
				a, b, c := e[0], e[1], k
				if !ccw(al, a, b, c) {
					a, b = b, a
				}
				if !ccw(al, a, b, c) {
					continue // degenerate
				}
				for d := int32(0); d < int32(n); d++ {
					if d == a || d == b || d == c {
						continue
					}
					if adj[[2]int32{a, d}] && adj[[2]int32{b, d}] && adj[[2]int32{c, d}] {
						// d is a neighbor of all three: only a
						// violation if strictly inside.
					}
					if inCircle(al, a, b, c, d) {
						// Only a true violation when abc is an actual
						// face (no point of the triangulation inside
						// it). Check d is not separated: for Delaunay,
						// NO point may lie in a face's circumcircle.
						// Faces vs non-faces: a non-face triangle of
						// pairwise-adjacent points can have points in
						// its circle. Detect faces: the triangle is a
						// face iff its edges are consecutive in the
						// ring; approximate by requiring no vertex
						// inside the triangle.
						inside := false
						for v := int32(0); v < int32(n); v++ {
							if v == a || v == b || v == c {
								continue
							}
							if ccw(al, a, b, v) && ccw(al, b, c, v) && ccw(al, c, a, v) {
								inside = true
								break
							}
						}
						if !inside {
							t.Fatalf("n=%d: circumcircle of face (%d,%d,%d) contains %d", n, a, b, c, d)
						}
					}
				}
			}
		}
	}
}

// TestDelaunayConnected checks every point appears in some edge (n ≥ 2).
func TestDelaunayConnected(t *testing.T) {
	px, py, ids := genTestPoints(100, 9)
	al := newMemAlg(px, py)
	delaunaySeq(al, ids)
	seen := map[int32]bool{}
	for _, e := range al.alive() {
		seen[e[0]] = true
		seen[e[1]] = true
	}
	if len(seen) != 100 {
		t.Fatalf("only %d of 100 points connected", len(seen))
	}
}
