package voronoi

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

const (
	paperPoints = 64 << 10
	baseWork    = 40 // per base-case edge construction
	futureCost  = 38
)

// KernelSource is the kernel in the mini-C subset: the point-tree recursion
// migrates (and is parallelizable); the merge's hull walks cache (the
// onext rings alternate between the two sub-diagrams irregularly, so their
// affinity is low).
const KernelSource = `
struct edge {
  struct edge *onext __affinity(60);
  int org;
};
struct tree {
  struct tree *left __affinity(90);
  struct tree *right __affinity(90);
};

struct edge * merge(struct edge *a, struct edge *b) {
  struct edge *lcand = a;
  while (incircle(lcand) == 1) {
    lcand = lcand->onext;
  }
  return lcand;
}

struct edge * delaunay(struct tree *t) {
  struct edge *l;
  struct edge *r;
  if (t == NULL) return NULL;
  l = touch(futurecall(delaunay(t->left)));
  r = delaunay(t->right);
  return merge(l, r);
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "voronoi",
		Description: "Computes the Voronoi Diagram of a set of points",
		PaperSize:   "64K points",
		Choice:      "M+C",
		Run:         Run,
		Source:      KernelSource,
		Phased:      &bench.Phased{Build: buildPhase, Kernel: kernelPhase},
	})
}

// genSorted produces deterministic points and their x-sorted id order.
func genSorted(n int) (px, py []float64, ids []int32) {
	rng := rand.New(rand.NewSource(4242))
	px = make([]float64, n)
	py = make([]float64, n)
	ids = make([]int32, n)
	for i := range px {
		px[i] = rng.Float64()
		py[i] = rng.Float64()
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		i, j := ids[a], ids[b]
		if px[i] != px[j] {
			return px[i] < px[j]
		}
		return py[i] < py[j]
	})
	return px, py, ids
}

// checksum folds the triangulation's edge set, order-independently
// canonicalized.
func checksum(edges [][2]int32) uint64 {
	canon := make([][2]int32, len(edges))
	for i, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		canon[i] = [2]int32{a, b}
	}
	sort.Slice(canon, func(i, j int) bool {
		if canon[i][0] != canon[j][0] {
			return canon[i][0] < canon[j][0]
		}
		return canon[i][1] < canon[j][1]
	})
	h := uint64(1469598103934665603)
	for _, e := range canon {
		h ^= uint64(uint32(e[0]))<<32 | uint64(uint32(e[1]))
		h *= 1099511628211
	}
	return h
}

type state struct {
	procs      int
	st         *heapStore
	n          int
	parallel   bool
	spawnDepth int
}

// procOf maps an x-rank to its owner (points are blocked by x).
func (s *state) procOf(rank int) int { return bench.BlockedProc(rank, s.n, s.procs) }

// par is the parallel divide and conquer: migrate to the region's owner,
// solve halves (the left as a future), then merge pinned on this
// processor with cached reads of both subresults.
func (s *state) par(t *rt.Thread, ids []int32, lo, depth int) (edgeRef, edgeRef) {
	t.MigrateTo(s.procOf(lo))
	al := s.st.bind(t)
	if len(ids) <= 3 {
		t.Work(baseWork)
		return delaunayBase(al, ids)
	}
	m := len(ids) / 2
	var ldo, ldi, rdi, rdo edgeRef
	if s.parallel && depth < s.spawnDepth {
		f := rt.Spawn(t, func(c *rt.Thread) [2]edgeRef {
			a, b := s.par(c, ids[:m], lo, depth+1)
			return [2]edgeRef{a, b}
		})
		rdi, rdo = pair2(rt.Call(t, func() [2]edgeRef {
			a, b := s.par(t, ids[m:], lo+m, depth+1)
			return [2]edgeRef{a, b}
		}))
		ldo, ldi = pair2(f.Touch(t))
	} else {
		if s.parallel {
			t.Work(futureCost)
		}
		ldo, ldi = pair2(rt.Call(t, func() [2]edgeRef {
			a, b := s.par(t, ids[:m], lo, depth+1)
			return [2]edgeRef{a, b}
		}))
		rdi, rdo = pair2(rt.Call(t, func() [2]edgeRef {
			a, b := s.par(t, ids[m:], lo+m, depth+1)
			return [2]edgeRef{a, b}
		}))
	}
	// The merge runs pinned where this level entered; both sub-hull
	// walks reach remote edges through the cache.
	t.MigrateTo(s.procOf(lo))
	return delaunayMerge(al, ldo, ldi, rdi, rdo)
}

func pair2(v [2]edgeRef) (edgeRef, edgeRef) { return v[0], v[1] }

// built is the immutable build-phase state: the materialized points,
// the x-sorted id order, and the precomputed sequential reference.
type built struct {
	pts       []gaddr.GP
	ids       []int32
	n         int
	distDepth int
	want      uint64
}

// buildPhase generates and materializes the point set, and computes the
// sequential Delaunay reference on the plain-Go backend (pure host
// arithmetic, so it belongs to the build).
func buildPhase(cfg bench.Config, r *rt.Runtime) any {
	n := cfg.Scaled(paperPoints, 512)
	px, py, ids := genSorted(n)

	// Materialize the points, blocked by x-rank (untimed build phase:
	// Voronoi reports kernel time).
	pts := make([]gaddr.GP, n)
	for rank, id := range ids {
		p := bench.BlockedProc(rank, n, r.P())
		g := bench.RawAlloc(r, p, pointRecSz)
		bench.RawStore(r, g, 0, floatBits(px[id]))
		bench.RawStore(r, g, 8, floatBits(py[id]))
		pts[id] = g
	}

	distDepth := 0
	for 1<<uint(distDepth) < r.P() {
		distDepth++
	}

	// Sequential reference on the plain-Go backend.
	ref := newMemAlg(px, py)
	delaunaySeq(ref, ids)

	return &built{pts: pts, ids: ids, n: n, distDepth: distDepth,
		want: checksum(ref.alive())}
}

// kernelPhase times the divide-and-conquer Delaunay merge. The edge
// store mirror is per-run state: the kernel allocates edges through it.
func kernelPhase(cfg bench.Config, r *rt.Runtime, st any) bench.Result {
	b := st.(*built)
	ids := b.ids
	site := &rt.Site{Name: "voronoi.edge", Mech: rt.Cache}
	s := &state{
		procs:      r.P(),
		st:         newHeapStore(site, b.pts),
		n:          b.n,
		parallel:   !cfg.Baseline,
		spawnDepth: b.distDepth + 2,
	}

	r.ResetForKernel()
	r.Run(0, func(t *rt.Thread) {
		rt.Call(t, func() [2]edgeRef {
			a, b := s.par(t, ids, 0, 0)
			return [2]edgeRef{a, b}
		})
	})

	return bench.Result{
		Name:      "voronoi",
		Procs:     r.P(),
		Cycles:    r.M.Makespan(),
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     checksum(s.st.bind(nil).aliveSafe()),
		WantCheck: b.want,
	}
}

// Run executes Voronoi under the configuration.
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	return kernelPhase(cfg, r, buildPhase(cfg, r))
}

// aliveSafe reads the mirror without needing a thread.
func (h *heapAlg) aliveSafe() [][2]int32 { return h.alive() }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
