// Package voronoi implements the Voronoi benchmark: the classic
// divide-and-conquer construction of the Delaunay triangulation (the
// Voronoi diagram's dual) with Guibas & Stolfi's quad-edge structure
// (paper Table 1: 64K points).
//
// Heuristic choice (Table 2: M+C): the divide recursion follows the point
// set (migration); the merge phase walks along the convex hulls of both
// sub-diagrams, "alternating between them in an irregular fashion", so the
// heuristic pins the merge on the processor owning one subresult and
// caches the other. The paper notes migrate-only collapses to 0.47 at 32
// processors (the thread ping-pongs), while a hand-tuned
// traverse-one/cache-other version reaches over 12 — the heuristic's
// choice lands at 8.76.
//
// The algorithm is written once over a small "edge algebra" interface and
// executed against two backends — plain Go slices (the sequential
// reference) and the distributed heap — so both runs perform bit-identical
// geometry in the same order.
package voronoi

import (
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// edgeRef is a directed quad-edge reference: a record handle shifted left
// twice plus the rotation (0..3). The zero value is nil.
type edgeRef uint64

func (e edgeRef) rot() edgeRef    { return e&^3 | (e+1)&3 }
func (e edgeRef) sym() edgeRef    { return e&^3 | (e+2)&3 }
func (e edgeRef) invrot() edgeRef { return e&^3 | (e+3)&3 }
func (e edgeRef) r() int          { return int(e & 3) }

// algebra is what the divide-and-conquer needs from an edge store: quarter
// onext pointers, org point ids on the primal quarters, point coordinates,
// and cost accounting.
type algebra interface {
	makeEdge(org, dst int32) edgeRef
	free(e edgeRef) // deleteEdge bookkeeping (records are not reused)
	onext(e edgeRef) edgeRef
	setOnext(e, v edgeRef)
	org(e edgeRef) int32
	pt(i int32) (x, y float64)
	work(cycles int64)
	// alive enumerates live records as (org, dest) pairs for checksums.
	alive() [][2]int32
}

// --- plain-Go backend -------------------------------------------------

// memQuarter is one of a record's four directed edges.
type memQuarter struct {
	next edgeRef
	data int32
}

type memAlg struct {
	px, py []float64
	recs   [][4]memQuarter
	dead   []bool
}

func newMemAlg(px, py []float64) *memAlg {
	// Record 0 is reserved so edgeRef 0 stays nil.
	return &memAlg{px: px, py: py, recs: make([][4]memQuarter, 1), dead: []bool{true}}
}

func (m *memAlg) makeEdge(org, dst int32) edgeRef {
	id := edgeRef(len(m.recs)) << 2
	var rec [4]memQuarter
	rec[0].next = id
	rec[1].next = id.invrot()
	rec[2].next = id.sym()
	rec[3].next = id.rot()
	rec[0].data = org
	rec[2].data = dst
	m.recs = append(m.recs, rec)
	m.dead = append(m.dead, false)
	return id
}

func (m *memAlg) free(e edgeRef)            { m.dead[e>>2] = true }
func (m *memAlg) onext(e edgeRef) edgeRef   { return m.recs[e>>2][e.r()].next }
func (m *memAlg) setOnext(e, v edgeRef)     { m.recs[e>>2][e.r()].next = v }
func (m *memAlg) org(e edgeRef) int32       { return m.recs[e>>2][e.r()].data }
func (m *memAlg) pt(i int32) (x, y float64) { return m.px[i], m.py[i] }
func (m *memAlg) work(int64)                {}

func (m *memAlg) alive() [][2]int32 {
	var out [][2]int32
	for i := 1; i < len(m.recs); i++ {
		if m.dead[i] {
			continue
		}
		out = append(out, [2]int32{m.recs[i][0].data, m.recs[i][2].data})
	}
	return out
}

// --- distributed-heap backend ------------------------------------------
//
// A quad-edge record is exactly one 64-byte cache line: four quarters of
// (onext word, data word). Points are 16-byte records. Both are reached
// through a caching site during merges; new edges are allocated on the
// thread's current processor, so each subproblem's edges live with it.

const (
	edgeRecSz  = 64
	pointRecSz = 16
)

// heapStore is the shared edge store; the virtual-time scheduler runs one
// thread at a time with real synchronization on every hand-off, so the
// plain slices are safe and allocation order is deterministic.
type heapStore struct {
	site *rt.Site
	pts  []gaddr.GP
	recs []gaddr.GP // record handle -> heap record
	dead []bool
	orgs [][2]int32 // mirror of (org,dest) per record for checksums
}

// heapAlg binds the shared store to one thread (each future body gets its
// own binding).
type heapAlg struct {
	st *heapStore
	t  *rt.Thread
}

func newHeapStore(site *rt.Site, pts []gaddr.GP) *heapStore {
	return &heapStore{
		site: site, pts: pts,
		recs: make([]gaddr.GP, 1), dead: []bool{true}, orgs: make([][2]int32, 1),
	}
}

func (st *heapStore) bind(t *rt.Thread) *heapAlg { return &heapAlg{st: st, t: t} }

func qOff(e edgeRef) uint32     { return uint32(e.r() * 16) }
func qDataOff(e edgeRef) uint32 { return uint32(e.r()*16 + 8) }

func (h *heapAlg) makeEdge(org, dst int32) edgeRef {
	st := h.st
	g := h.t.Alloc(h.t.Loc(), edgeRecSz)
	id := edgeRef(len(st.recs)) << 2
	st.recs = append(st.recs, g)
	st.dead = append(st.dead, false)
	st.orgs = append(st.orgs, [2]int32{org, dst})
	h.t.StoreWord(st.site, g, qOff(id), uint64(id))
	h.t.StoreWord(st.site, g, qOff(id.rot()), uint64(id.invrot()))
	h.t.StoreWord(st.site, g, qOff(id.sym()), uint64(id.sym()))
	h.t.StoreWord(st.site, g, qOff(id.invrot()), uint64(id.rot()))
	h.t.StoreWord(st.site, g, qDataOff(id), uint64(uint32(org)))
	h.t.StoreWord(st.site, g, qDataOff(id.sym()), uint64(uint32(dst)))
	return id
}

func (h *heapAlg) free(e edgeRef) { h.st.dead[e>>2] = true }

func (h *heapAlg) onext(e edgeRef) edgeRef {
	return edgeRef(h.t.LoadWord(h.st.site, h.st.recs[e>>2], qOff(e)))
}

func (h *heapAlg) setOnext(e, v edgeRef) {
	h.t.StoreWord(h.st.site, h.st.recs[e>>2], qOff(e), uint64(v))
}

func (h *heapAlg) org(e edgeRef) int32 {
	return int32(uint32(h.t.LoadWord(h.st.site, h.st.recs[e>>2], qDataOff(e))))
}

func (h *heapAlg) pt(i int32) (x, y float64) {
	g := h.st.pts[i]
	return h.t.LoadFloat(h.st.site, g, 0), h.t.LoadFloat(h.st.site, g, 8)
}

func (h *heapAlg) work(cycles int64) { h.t.Work(cycles) }

func (h *heapAlg) alive() [][2]int32 {
	var out [][2]int32
	for i := 1; i < len(h.st.recs); i++ {
		if h.st.dead[i] {
			continue
		}
		out = append(out, h.st.orgs[i])
	}
	return out
}

var _ algebra = (*memAlg)(nil)
var _ algebra = (*heapAlg)(nil)
