package voronoi

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rt"
)

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 128})
		if !res.Verified() {
			t.Fatalf("P=%d: edge-set checksum %#x != %#x", procs, res.Check, res.WantCheck)
		}
	}
}

func TestCorrectnessAllSchemes(t *testing.T) {
	for _, scheme := range []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral} {
		res := Run(bench.Config{Procs: 4, Scale: 128, Scheme: scheme})
		if !res.Verified() {
			t.Fatalf("%v: checksum mismatch", scheme)
		}
	}
}

func TestSpeedupShape(t *testing.T) {
	base := Run(bench.Config{Baseline: true, Scale: 32})
	sp1 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 1, Scale: 32}).Cycles)
	sp8 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 8, Scale: 32}).Cycles)
	if sp1 < 0.6 {
		t.Errorf("1-processor speedup %.2f (paper: 0.75)", sp1)
	}
	if sp8 < 1.8 {
		t.Errorf("P=8 speedup %.2f (paper: 4.23)", sp8)
	}
}

func TestMigrateOnlyCollapses(t *testing.T) {
	// Table 2: 8.76 heuristic vs 0.47 migrate-only at 32 — the merge
	// walk ping-pongs between the two sub-diagrams under migration.
	h := Run(bench.Config{Procs: 8, Scale: 64})
	m := Run(bench.Config{Procs: 8, Scale: 64, Mode: rt.MigrateOnly})
	if !m.Verified() {
		t.Fatal("migrate-only must verify")
	}
	if float64(m.Cycles) < 2*float64(h.Cycles) {
		t.Errorf("migrate-only %d vs heuristic %d; expected collapse", m.Cycles, h.Cycles)
	}
}

func TestHeuristicChoice(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	rec := r.FindLoop("delaunay/rec")
	if rec == nil || rec.Mech != core.ChooseMigrate || rec.Var != "t" {
		t.Fatal("point-tree recursion must migrate t")
	}
	mrg := r.FindLoop("merge/while")
	if mrg == nil || mrg.Mech != core.ChooseCache {
		t.Fatal("merge hull walk must cache")
	}
	if r.UsesMigrationOnly() {
		t.Fatal("voronoi is an M+C benchmark")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 128})
	b := Run(bench.Config{Procs: 4, Scale: 128})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
