package voronoi

// This file is the Guibas–Stolfi divide-and-conquer Delaunay construction,
// written once against the algebra interface so the sequential reference
// and the distributed runs execute identical geometry.

// Work constants for the geometric predicates.
const (
	ccwWork      = 70
	incircleWork = 140
)

// ccw reports whether points a→b→c turn counterclockwise.
func ccw(al algebra, a, b, c int32) bool {
	al.work(ccwWork)
	ax, ay := al.pt(a)
	bx, by := al.pt(b)
	cx, cy := al.pt(c)
	return (bx-ax)*(cy-ay)-(by-ay)*(cx-ax) > 0
}

// inCircle reports whether d lies strictly inside the circumcircle of the
// counterclockwise triangle a,b,c.
func inCircle(al algebra, a, b, c, d int32) bool {
	al.work(incircleWork)
	ax, ay := al.pt(a)
	bx, by := al.pt(b)
	cx, cy := al.pt(c)
	dx, dy := al.pt(d)
	adx, ady := ax-dx, ay-dy
	bdx, bdy := bx-dx, by-dy
	cdx, cdy := cx-dx, cy-dy
	alift := adx*adx + ady*ady
	blift := bdx*bdx + bdy*bdy
	clift := cdx*cdx + cdy*cdy
	det := adx*(bdy*clift-cdy*blift) -
		ady*(bdx*clift-cdx*blift) +
		alift*(bdx*cdy-cdx*bdy)
	return det > 0
}

// Derived edge functions.
func dest(al algebra, e edgeRef) int32    { return al.org(e.sym()) }
func lnext(al algebra, e edgeRef) edgeRef { return al.onext(e.invrot()).rot() }
func oprev(al algebra, e edgeRef) edgeRef { return al.onext(e.rot()).rot() }
func rprev(al algebra, e edgeRef) edgeRef { return al.onext(e.sym()) }

// splice is the quad-edge primitive: it exchanges the onext rings of a and
// b (and, dually, of their rotated duals).
func splice(al algebra, a, b edgeRef) {
	alpha := al.onext(a).rot()
	beta := al.onext(b).rot()
	t1 := al.onext(b)
	t2 := al.onext(a)
	al.setOnext(a, t1)
	al.setOnext(b, t2)
	t1 = al.onext(beta)
	t2 = al.onext(alpha)
	al.setOnext(alpha, t1)
	al.setOnext(beta, t2)
}

// connect adds an edge from dest(a) to org(b) across a face.
func connect(al algebra, a, b edgeRef) edgeRef {
	e := al.makeEdge(dest(al, a), al.org(b))
	splice(al, e, lnext(al, a))
	splice(al, e.sym(), b)
	return e
}

// deleteEdge unlinks and frees an edge.
func deleteEdge(al algebra, e edgeRef) {
	splice(al, e, oprev(al, e))
	splice(al, e.sym(), oprev(al, e.sym()))
	al.free(e)
}

// leftOf / rightOf relate a point to a directed edge.
func leftOf(al algebra, p int32, e edgeRef) bool {
	return ccw(al, p, al.org(e), dest(al, e))
}
func rightOf(al algebra, p int32, e edgeRef) bool {
	return ccw(al, p, dest(al, e), al.org(e))
}

// delaunayMerge stitches two triangulations along their common tangent,
// deleting edges that fail the incircle test (the "rising bubble").
func delaunayMerge(al algebra, ldo, ldi, rdi, rdo edgeRef) (edgeRef, edgeRef) {
	// Lower common tangent.
	for {
		switch {
		case leftOf(al, al.org(rdi), ldi):
			ldi = lnext(al, ldi)
		case rightOf(al, al.org(ldi), rdi):
			rdi = rprev(al, rdi)
		default:
			goto tangentDone
		}
	}
tangentDone:
	basel := connect(al, rdi.sym(), ldi)
	if al.org(ldi) == al.org(ldo) {
		ldo = basel.sym()
	}
	if al.org(rdi) == al.org(rdo) {
		rdo = basel
	}
	valid := func(e edgeRef) bool { return rightOf(al, dest(al, e), basel) }
	for {
		lcand := al.onext(basel.sym())
		if valid(lcand) {
			for inCircle(al, dest(al, basel), al.org(basel), dest(al, lcand),
				dest(al, al.onext(lcand))) {
				tmp := al.onext(lcand)
				deleteEdge(al, lcand)
				lcand = tmp
			}
		}
		rcand := oprev(al, basel)
		if valid(rcand) {
			for inCircle(al, dest(al, basel), al.org(basel), dest(al, rcand),
				dest(al, oprev(al, rcand))) {
				tmp := oprev(al, rcand)
				deleteEdge(al, rcand)
				rcand = tmp
			}
		}
		lvalid, rvalid := valid(lcand), valid(rcand)
		if !lvalid && !rvalid {
			break
		}
		if !lvalid || (rvalid && inCircle(al,
			dest(al, lcand), al.org(lcand), al.org(rcand), dest(al, rcand))) {
			basel = connect(al, rcand, basel.sym())
		} else {
			basel = connect(al, basel.sym(), lcand.sym())
		}
	}
	return ldo, rdo
}

// delaunayBase handles two- and three-point sets. ids must be sorted by x
// (ties by y). It returns the ccw hull edge out of the leftmost point and
// the cw hull edge out of the rightmost.
func delaunayBase(al algebra, ids []int32) (edgeRef, edgeRef) {
	if len(ids) == 2 {
		a := al.makeEdge(ids[0], ids[1])
		return a, a.sym()
	}
	// Three points.
	a := al.makeEdge(ids[0], ids[1])
	b := al.makeEdge(ids[1], ids[2])
	splice(al, a.sym(), b)
	switch {
	case ccw(al, ids[0], ids[1], ids[2]):
		connect(al, b, a)
		return a, b.sym()
	case ccw(al, ids[0], ids[2], ids[1]):
		c := connect(al, b, a)
		return c.sym(), c
	default: // collinear
		return a, b.sym()
	}
}

// delaunaySeq is the sequential divide and conquer (the reference path).
func delaunaySeq(al algebra, ids []int32) (edgeRef, edgeRef) {
	if len(ids) <= 3 {
		return delaunayBase(al, ids)
	}
	m := len(ids) / 2
	ldo, ldi := delaunaySeq(al, ids[:m])
	rdi, rdo := delaunaySeq(al, ids[m:])
	return delaunayMerge(al, ldo, ldi, rdi, rdo)
}
