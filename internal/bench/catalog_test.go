package bench_test

import (
	"encoding/json"
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/rt"

	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/treeadd"
)

// TestCatalogMatchesRegistry pins the catalog to the live registry and the
// simulator's own enumerations: every registered benchmark appears in
// order, and every advertised scheme and mode parses back to the value
// that produced it.
func TestCatalogMatchesRegistry(t *testing.T) {
	cat := bench.Catalog()
	names := bench.Names()
	if len(cat) != len(names) {
		t.Fatalf("catalog has %d entries, registry has %d", len(cat), len(names))
	}
	for i, e := range cat {
		if e.Name != names[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, e.Name, names[i])
		}
		info, ok := bench.Get(e.Name)
		if !ok {
			t.Fatalf("catalog names unregistered benchmark %q", e.Name)
		}
		if e.Description != info.Description || e.PaperSize != info.PaperSize || e.Choice != info.Choice {
			t.Errorf("%s: catalog fields diverge from registry Info", e.Name)
		}
		if e.DefaultScale != bench.DefaultScale || e.DefaultProcs != bench.CatalogDefaultProcs {
			t.Errorf("%s: defaults %d/%d, want %d/%d",
				e.Name, e.DefaultProcs, e.DefaultScale, bench.CatalogDefaultProcs, bench.DefaultScale)
		}
		if len(e.Schemes) != len(coherence.Kinds()) {
			t.Fatalf("%s: %d schemes, want %d", e.Name, len(e.Schemes), len(coherence.Kinds()))
		}
		for _, s := range e.Schemes {
			if _, err := coherence.Parse(s); err != nil {
				t.Errorf("%s: advertised scheme does not parse: %v", e.Name, err)
			}
		}
		if len(e.Modes) != len(rt.Modes()) {
			t.Fatalf("%s: %d modes, want %d", e.Name, len(e.Modes), len(rt.Modes()))
		}
		for _, m := range e.Modes {
			if _, err := rt.ParseMode(m); err != nil {
				t.Errorf("%s: advertised mode does not parse: %v", e.Name, err)
			}
		}
	}
}

// TestParseRoundTrips checks the String/Parse pairs are exact inverses and
// reject junk.
func TestParseRoundTrips(t *testing.T) {
	for _, k := range coherence.Kinds() {
		got, err := coherence.Parse(k.String())
		if err != nil || got != k {
			t.Errorf("coherence.Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := coherence.Parse("LOCAL"); err == nil {
		t.Error("coherence.Parse accepted LOCAL")
	}
	for _, m := range rt.Modes() {
		got, err := rt.ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("rt.ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := rt.ParseMode("migrate"); err == nil {
		t.Error("rt.ParseMode accepted migrate")
	}
}

// TestCatalogJSONDeterministic pins the canonical rendering: repeated
// marshals are byte-identical and decode losslessly.
func TestCatalogJSONDeterministic(t *testing.T) {
	a, err := bench.CatalogJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.CatalogJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("CatalogJSON not byte-stable across calls")
	}
	var back []bench.CatalogEntry
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatalf("catalog JSON does not decode: %v", err)
	}
	if len(back) != len(bench.Catalog()) {
		t.Fatalf("round trip lost entries: %d != %d", len(back), len(bench.Catalog()))
	}
}
