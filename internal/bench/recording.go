package bench

import (
	"fmt"
	"sync"

	"repro/internal/bench/record"
	"repro/internal/coherence"
	"repro/internal/metrics"
	"repro/internal/rt"
	"repro/internal/trace"
)

// This file is the single code path between the human-readable tables and
// the persistent record pipeline: every run the table renderers execute
// goes through execute(), and when a run observer is installed each run
// also produces a record.RunRecord. With no observer the path is exactly
// info.Run — no registry, no recorder, no overhead — which keeps default
// oldenbench output byte-identical to the pre-recording harness.

var (
	obsMu       sync.Mutex
	runObserver func(record.RunRecord)
)

// SetRunObserver installs fn to receive a RunRecord for every benchmark
// run the harness executes (tables, speedup curves, and CollectRecords).
// Passing nil uninstalls the observer. cmd/oldenbench's -json flag uses
// this to stream records to stdout while the tables render to stderr.
func SetRunObserver(fn func(record.RunRecord)) {
	obsMu.Lock()
	runObserver = fn
	obsMu.Unlock()
}

func observer() func(record.RunRecord) {
	obsMu.Lock()
	defer obsMu.Unlock()
	return runObserver
}

// execute runs one benchmark configuration for a table renderer. It is
// info.Run when no observer is installed, and the recorded path otherwise.
func execute(info Info, cfg Config) Result {
	fn := observer()
	if fn == nil {
		return info.Run(cfg)
	}
	res, rec := RunRecorded(info, cfg)
	fn(rec)
	return res
}

// RunRecorded executes one configuration with a metrics registry and trace
// recorder attached (unless the caller supplied its own) and returns the
// result alongside its persistent record. Because metrics and tracing
// charge no simulated cycles, the recorded run's makespan is identical to
// an unobserved one.
func RunRecorded(info Info, cfg Config) (Result, record.RunRecord) {
	cfg = cfg.normalize()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.New(0)
		cfg.Trace = tr
	}
	res := info.Run(cfg)
	rec := record.RunRecord{
		Benchmark:   info.Name,
		Baseline:    cfg.Baseline,
		Procs:       cfg.Procs,
		Scheme:      cfg.Scheme.String(),
		Mode:        cfg.Mode.String(),
		Scale:       cfg.Scale,
		Cycles:      res.Cycles,
		Verified:    res.Verified(),
		Pages:       res.Pages,
		Stats:       res.Stats,
		MissPct:     res.Stats.MissPct(),
		Metrics:     reg.Snapshot().Flat(),
		TraceDigest: tr.Digest().String(),
	}
	return res, rec
}

// RunPhasedRecorded is RunRecorded through the phased path: it executes
// one configuration, reusing bs when it fits, and returns the record
// alongside the (possibly new) build state. ResetForKernel clears the
// recorder and registry at the phase boundary, so the record — cycles,
// stats, trace digest — covers exactly the timed region and is
// bit-identical whether the build ran or was restored from images.
func RunPhasedRecorded(info Info, cfg Config, bs *BuildState) (Result, record.RunRecord, *BuildState, bool, error) {
	cfg = cfg.normalize()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.New(0)
		cfg.Trace = tr
	}
	res, nbs, reused, err := RunPhased(info, cfg, bs)
	rec := record.RunRecord{
		Benchmark:   info.Name,
		Baseline:    cfg.Baseline,
		Procs:       cfg.Procs,
		Scheme:      cfg.Scheme.String(),
		Mode:        cfg.Mode.String(),
		Scale:       cfg.Scale,
		Cycles:      res.Cycles,
		Verified:    res.Verified(),
		Pages:       res.Pages,
		Stats:       res.Stats,
		MissPct:     res.Stats.MissPct(),
		Metrics:     reg.Snapshot().Flat(),
		TraceDigest: tr.Digest().String(),
	}
	return res, rec, nbs, reused, err
}

// recordConfigs is the pinned configuration suite each BENCH_<name>.json
// holds: the sequential baseline, the heuristic run under each of the
// three coherence schemes, and the forced-migration run — everything
// Table 2's and Table 3's columns at one machine size need.
func recordConfigs(procs, scale int) []Config {
	return []Config{
		{Baseline: true, Scale: scale},
		{Procs: procs, Scale: scale, Scheme: coherence.LocalKnowledge},
		{Procs: procs, Scale: scale, Scheme: coherence.GlobalKnowledge},
		{Procs: procs, Scale: scale, Scheme: coherence.Bilateral},
		{Procs: procs, Scale: scale, Mode: rt.MigrateOnly},
	}
}

// CollectRecords runs the pinned suite for one benchmark and returns its
// record file. Every run must verify against the sequential reference;
// an unverified run is an error, not a record.
func CollectRecords(name string, procs, scale int) (record.File, error) {
	info, ok := Get(name)
	if !ok {
		return record.File{}, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	f := record.File{Benchmark: name, Choice: info.Choice, Whole: info.Whole}
	for _, cfg := range recordConfigs(procs, scale) {
		res, rec := RunRecorded(info, cfg)
		if !res.Verified() {
			return record.File{}, fmt.Errorf("bench: %s [%s] check %#x != %#x",
				name, rec.Key(), res.Check, res.WantCheck)
		}
		if fn := observer(); fn != nil {
			fn(rec)
		}
		f.Records = append(f.Records, rec)
	}
	return f, nil
}
