package mst

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lang"
)

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 8})
		if !res.Verified() {
			t.Fatalf("P=%d: weight %d != %d", procs, res.Check, res.WantCheck)
		}
	}
}

func TestMigrationsGrowWithP(t *testing.T) {
	// The paper: "the number of migrations is O(NP)" — per phase, one
	// round trip per processor.
	m4 := Run(bench.Config{Procs: 4, Scale: 8}).Stats.Migrations
	m8 := Run(bench.Config{Procs: 8, Scale: 8}).Stats.Migrations
	if m8 < m4*3/2 {
		t.Errorf("migrations %d at P=4 vs %d at P=8; want ≈2×", m4, m8)
	}
}

func TestSpeedupPoorAndFlattening(t *testing.T) {
	base := Run(bench.Config{Baseline: true, Scale: 2})
	var sp []float64
	for _, p := range []int{1, 4, 16} {
		res := Run(bench.Config{Procs: p, Scale: 2})
		sp = append(sp, float64(base.Cycles)/float64(res.Cycles))
	}
	if sp[0] < 0.8 {
		t.Errorf("1-processor speedup %.2f; want near 1 (0.96 in the paper)", sp[0])
	}
	if sp[1] < 1.4 {
		t.Errorf("P=4 speedup %.2f; MST should still gain a little", sp[1])
	}
	// The hallmark: efficiency collapses as P grows.
	if eff := sp[2] / 16; eff > 0.5 {
		t.Errorf("P=16 efficiency %.2f; MST should scale poorly", eff)
	}
}

func TestHeuristicChoice(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	scan := r.FindLoop("BlueRule/while")
	if scan == nil {
		t.Fatal("scan loop not found")
	}
	if scan.Mech != core.ChooseMigrate || scan.Var != "l" {
		t.Fatalf("scan loop = %s %s; the annotated affinity makes it migrate", scan.Mech, scan.Var)
	}
	if !r.UsesMigrationOnly() {
		t.Fatal("MST is an M benchmark (Table 2)")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 8})
	b := Run(bench.Config{Procs: 4, Scale: 8})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
