// Package mst implements the MST benchmark: Bentley's parallel minimum-
// spanning-tree algorithm (paper Table 1: 1K nodes). Vertices are
// distributed across processors, each keeping its current distance to the
// growing tree; each phase applies the blue rule — every processor scans
// its local vertices against the most recently added vertex, the global
// minimum joins the tree.
//
// Heuristic choice (Table 2: M): MST is one of the three benchmarks with
// explicit path-affinity hints; the per-processor vertex lists are fully
// local (affinity 100), so the scan loops migrate, and the phase fan-out is
// parallelizable. Performance is poor and degrades with P because the
// number of migrations is O(N·P) and they "serve mostly as a mechanism for
// synchronization"; caching would not help.
package mst

import (
	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// Vertex layout: id @0, dist @8, next @16.
const (
	offID   = 0
	offDist = 8
	offNext = 16
	vertSz  = 24
)

const (
	paperVerts = 1024
	infinity   = int64(1) << 60
	scanWork   = 300 // per-vertex hash-table lookup + compare per phase
	// (the paper: 9.81s sequential for 1K vertices at 33 MHz ≈ 310 cycles/vertex/phase)
	phaseWork = 60 // per-phase bookkeeping at the coordinator
)

// weight is the deterministic pseudo-random edge weight between two
// vertices (the Olden benchmark computes weights with a hash function too).
func weight(a, b int64) int64 {
	if a > b {
		a, b = b, a
	}
	x := uint64(a)*2654435761 ^ uint64(b)*40503
	x ^= x >> 15
	x *= 2246822519
	x ^= x >> 13
	return int64(x%2048) + 1
}

// KernelSource is the kernel in the mini-C subset. The vertex lists carry
// an explicit 100% path-affinity (they are built fully local), so the blue
// rule's scan migrates — making MST migration-only, as in Table 2.
const KernelSource = `
struct vertex {
  int id;
  int dist;
  struct vertex *next __affinity(100);
};
struct plist {
  struct vertex *verts __affinity(0);
  struct plist *next __affinity(0);
};

int BlueRule(struct vertex *l, int last) {
  int best = 100000000;
  while (l) {
    l->dist = l->dist;
    if (l->dist < best) best = l->dist;
    l = l->next;
  }
  return best;
}

void DoAllBlueRule(struct plist *p, int last) {
  while (p) {
    futurecall(BlueRule(p->verts, last));
    p = p->next;
  }
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "mst",
		Description: "Computes the minimum spanning tree of a graph",
		PaperSize:   "1K nodes",
		Choice:      "M",
		Run:         Run,
		Source:      KernelSource,
		Phased:      &bench.Phased{Build: buildPhase, Kernel: kernelPhase},
	})
}

// reference is sequential Prim's algorithm over the same weight function.
func reference(n int) uint64 {
	dist := make([]int64, n)
	in := make([]bool, n)
	for i := range dist {
		dist[i] = infinity
	}
	in[0] = true
	last := int64(0)
	var total int64
	for added := 1; added < n; added++ {
		best, bestI := infinity, -1
		for i := 1; i < n; i++ {
			if in[i] {
				continue
			}
			if w := weight(int64(i), last); w < dist[i] {
				dist[i] = w
			}
			if dist[i] < best {
				best, bestI = dist[i], i
			}
		}
		in[bestI] = true
		last = int64(bestI)
		total += best
	}
	return uint64(total)
}

type scanResult struct {
	dist int64
	id   int64
}

// built is the immutable build-phase state: the per-processor list
// heads, the problem size and the precomputed reference weight.
type built struct {
	heads []gaddr.GP
	n     int
	want  uint64
}

// buildPhase materializes the vertex lists through the raw heap API.
func buildPhase(cfg bench.Config, r *rt.Runtime) any {
	n := cfg.Scaled(paperVerts, 512)

	// Build per-processor vertex lists (vertex 0, the root of the tree,
	// is excluded — it is already "in").
	heads := make([]gaddr.GP, r.P())
	for i := n - 1; i >= 1; i-- {
		p := bench.BlockedProc(i, n, r.P())
		v := bench.RawAlloc(r, p, vertSz)
		bench.RawStore(r, v, offID, uint64(i))
		bench.RawStore(r, v, offDist, uint64(infinity))
		bench.RawStorePtr(r, v, offNext, heads[p])
		heads[p] = v
	}

	return &built{heads: heads, n: n, want: reference(n)}
}

// kernelPhase times the Prim phases and verifies the total weight.
func kernelPhase(cfg bench.Config, r *rt.Runtime, st any) bench.Result {
	b := st.(*built)
	heads, n := b.heads, b.n

	siteV := &rt.Site{Name: "mst.vertex", Mech: rt.Migrate}

	// blueRule scans one processor's vertices: relax against the vertex
	// added last phase, skip the one just inserted, and return the
	// local minimum.
	blueRule := func(t *rt.Thread, head gaddr.GP, last int64, taken int64) scanResult {
		best := scanResult{dist: infinity, id: -1}
		for v := head; !v.IsNil(); v = t.LoadPtr(siteV, v, offNext) {
			id := t.LoadInt(siteV, v, offID)
			d := t.LoadInt(siteV, v, offDist)
			t.Work(scanWork)
			if d < 0 {
				continue // already in the tree
			}
			if id == taken {
				t.StoreInt(siteV, v, offDist, -1)
				continue
			}
			if w := weight(id, last); w < d {
				d = w
				t.StoreInt(siteV, v, offDist, d)
			}
			if d < best.dist {
				best = scanResult{dist: d, id: id}
			}
		}
		return best
	}

	r.ResetForKernel()
	var total int64
	r.Run(0, func(t *rt.Thread) {
		last, taken := int64(0), int64(-1)
		for added := 1; added < n; added++ {
			t.Work(phaseWork)
			var phaseBest scanResult
			phaseBest.dist = infinity
			phaseBest.id = -1
			if cfg.Baseline {
				for p := 0; p < r.P(); p++ {
					if heads[p].IsNil() {
						continue
					}
					res := blueRule(t, heads[p], last, taken)
					if res.dist < phaseBest.dist {
						phaseBest = res
					}
				}
			} else {
				var futs []*rt.Future[scanResult]
				for p := 0; p < r.P(); p++ {
					if heads[p].IsNil() {
						continue
					}
					head := heads[p]
					l, tk := last, taken
					futs = append(futs, rt.Spawn(t, func(c *rt.Thread) scanResult {
						return blueRule(c, head, l, tk)
					}))
				}
				for _, f := range futs {
					if res := f.Touch(t); res.dist < phaseBest.dist {
						phaseBest = res
					}
				}
			}
			total += phaseBest.dist
			taken = phaseBest.id
			last = phaseBest.id
		}
		// The final chosen vertex still needs its "taken" marking for
		// bookkeeping symmetry, but no phase follows.
	})

	return bench.Result{
		Name:      "mst",
		Procs:     r.P(),
		Cycles:    r.M.Makespan(),
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     uint64(total),
		WantCheck: b.want,
	}
}

// Run executes MST under the configuration.
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	return kernelPhase(cfg, r, buildPhase(cfg, r))
}
