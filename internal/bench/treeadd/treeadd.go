// Package treeadd implements the TreeAdd benchmark: add the values in a
// balanced binary tree (paper Table 1: 1024K nodes). The heuristic chooses
// migration alone ("M"): the recursion's update of t combines the left and
// right affinities into 1−(1−a_l)(1−a_r) ≥ the 90% threshold, and the
// recursion is parallelizable (futurecalls), so t's dereferences migrate.
package treeadd

import (
	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// Node layout: val int at 0, left pointer at 8, right pointer at 16.
const (
	offVal   = 0
	offLeft  = 8
	offRight = 16
	nodeSize = 24
)

// workPerNode is the simulated computation charged per visited node,
// calibrated so Olden's per-reference overhead lands near the paper's
// one-processor speedup (0.73 for TreeAdd).
const workPerNode = 100

// futureBookkeeping approximates the futurecall+touch cost Olden pays at
// every recursion even when lazy task creation never makes a thread. The
// runtime charges it for real above the spawn cutoff; below it the kernel
// charges the same amount explicitly.
const futureBookkeeping = 38

// KernelSource is the benchmark kernel in the mini-C subset; tests check
// that the compile-time heuristic selects migration for t, matching
// Table 2's "M".
const KernelSource = `
struct tree {
  int val;
  struct tree *left __affinity(90);
  struct tree *right __affinity(70);
};

int TreeAdd(struct tree *t) {
  int l;
  int r;
  if (t == NULL) return 0;
  l = touch(futurecall(TreeAdd(t->left)));
  r = TreeAdd(t->right);
  return l + r + t->val;
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "treeadd",
		Description: "Adds the values in a tree",
		PaperSize:   "1024K nodes",
		Choice:      "M",
		Run:         Run,
		Source:      KernelSource,
		Phased:      &bench.Phased{Build: buildPhase, Kernel: kernelPhase},
	})
}

type state struct {
	siteT    *rt.Site
	parallel bool
	// spawnDepth bounds futurecall depth: below the data-distribution
	// depth every subtree is local, so lazy task creation would never
	// steal anyway.
	spawnDepth int
}

// build allocates a perfect binary tree of 2^levels − 1 nodes, placing
// subtrees at the distribution depth round-robin across processors and
// numbering nodes so the total is a closed form.
func build(r *rt.Runtime, levels, distDepth int, next *int64) gaddr.GP {
	var rec func(level, proc, stride int) gaddr.GP
	rec = func(level, proc, stride int) gaddr.GP {
		if level == 0 {
			return gaddr.Nil
		}
		n := bench.RawAlloc(r, proc, nodeSize)
		v := *next
		*next++
		bench.RawStore(r, n, offVal, uint64(v))
		lp, rp := proc, proc
		if stride > 1 {
			rp = proc + stride/2
		}
		bench.RawStorePtr(r, n, offLeft, rec(level-1, lp, stride/2))
		bench.RawStorePtr(r, n, offRight, rec(level-1, rp, stride/2))
		return n
	}
	_ = distDepth
	return rec(levels, 0, r.P())
}

// add is the kernel: compiled per the heuristic, every dereference of t
// migrates; the first recursive call is a futurecall.
func (s *state) add(t *rt.Thread, node gaddr.GP, depth int) int64 {
	if node.IsNil() {
		return 0
	}
	left := t.LoadPtr(s.siteT, node, offLeft)
	right := t.LoadPtr(s.siteT, node, offRight)
	val := t.LoadInt(s.siteT, node, offVal)
	t.Work(workPerNode)
	if s.parallel && depth < s.spawnDepth {
		f := rt.Spawn(t, func(c *rt.Thread) int64 { return s.add(c, left, depth+1) })
		r := rt.Call(t, func() int64 { return s.add(t, right, depth+1) })
		return f.Touch(t) + r + val
	}
	if s.parallel {
		t.Work(futureBookkeeping)
	}
	lv := rt.Call(t, func() int64 { return s.add(t, left, depth+1) })
	rv := rt.Call(t, func() int64 { return s.add(t, right, depth+1) })
	return lv + rv + val
}

// Levels returns the tree depth for a configuration (paper size: 2^20−1
// nodes ≈ 1024K).
func levels(cfg bench.Config) int {
	n := cfg.Scaled(1<<20, 1<<10)
	l := 0
	for (1 << uint(l)) <= n {
		l++
	}
	return l
}

// built is the immutable build-phase state: what the kernel needs to
// find and verify the tree, free of runtime and configuration.
type built struct {
	root      gaddr.GP
	nodes     int64
	distDepth int
}

// buildPhase allocates the tree through the raw heap API (no simulated
// accesses, so the phase is scheme-invariant by construction).
func buildPhase(cfg bench.Config, r *rt.Runtime) any {
	lv := levels(cfg)
	nodes := int64(1)<<uint(lv) - 1
	var next int64
	distDepth := 0
	for 1<<uint(distDepth) < r.P() {
		distDepth++
	}
	root := build(r, lv, distDepth, &next)
	return &built{root: root, nodes: nodes, distDepth: distDepth}
}

// kernelPhase times the TreeAdd traversal and verifies the closed form.
func kernelPhase(cfg bench.Config, r *rt.Runtime, st any) bench.Result {
	b := st.(*built)
	s := &state{
		siteT:      &rt.Site{Name: "treeadd.t", Mech: rt.Migrate},
		parallel:   !cfg.Baseline,
		spawnDepth: b.distDepth + 2,
	}

	r.ResetForKernel()
	var sum int64
	r.Run(0, func(t *rt.Thread) {
		sum = rt.Call(t, func() int64 { return s.add(t, b.root, 0) })
	})

	return bench.Result{
		Name:      "treeadd",
		Procs:     r.P(),
		Cycles:    r.M.Makespan(),
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     uint64(sum),
		WantCheck: uint64(b.nodes * (b.nodes - 1) / 2),
	}
}

// Run executes TreeAdd under the configuration and reports the kernel
// makespan and statistics.
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	return kernelPhase(cfg, r, buildPhase(cfg, r))
}
