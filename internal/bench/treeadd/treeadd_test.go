package treeadd

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rt"
)

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 256})
		if !res.Verified() {
			t.Fatalf("P=%d: sum %d != %d", procs, res.Check, res.WantCheck)
		}
	}
}

func TestBaselineVerifies(t *testing.T) {
	res := Run(bench.Config{Baseline: true, Scale: 256})
	if !res.Verified() {
		t.Fatalf("baseline sum %d != %d", res.Check, res.WantCheck)
	}
	if res.Stats.Futures != 0 {
		t.Fatal("baseline must not use futures")
	}
}

func TestSpeedupShape(t *testing.T) {
	base := Run(bench.Config{Baseline: true, Scale: 64})
	prev := 0.0
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 64})
		sp := float64(base.Cycles) / float64(res.Cycles)
		if procs == 1 && (sp < 0.5 || sp > 1.0) {
			t.Errorf("1-processor speedup %.2f; Olden overhead should land in (0.5,1.0)", sp)
		}
		if sp < prev {
			t.Errorf("speedup not monotone: %.2f at P=%d after %.2f", sp, procs, prev)
		}
		prev = sp
	}
	if prev < 4 {
		t.Errorf("speedup at P=8 = %.2f; TreeAdd should scale well", prev)
	}
}

func TestMigrationOnlyMatchesHeuristic(t *testing.T) {
	// TreeAdd is an "M" benchmark: forcing migrate-only must not change
	// the choice the heuristic already made, so cycles are identical.
	h := Run(bench.Config{Procs: 4, Scale: 256})
	m := Run(bench.Config{Procs: 4, Scale: 256, Mode: rt.MigrateOnly})
	if h.Cycles != m.Cycles {
		t.Fatalf("heuristic %d vs migrate-only %d; must match for an M benchmark", h.Cycles, m.Cycles)
	}
}

func TestHeuristicChoosesMigration(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	l := r.FindLoop("TreeAdd/rec")
	if l == nil {
		t.Fatal("recursion loop not found")
	}
	if l.Mech != core.ChooseMigrate || l.Var != "t" {
		t.Fatalf("heuristic chose %s %s; the paper's Table 2 says M", l.Mech, l.Var)
	}
	if !r.UsesMigrationOnly() {
		t.Fatal("TreeAdd must be migration-only")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 256})
	b := Run(bench.Config{Procs: 4, Scale: 256})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
