//go:build !race

package bench_test

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = false
