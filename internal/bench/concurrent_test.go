package bench_test

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/trace"

	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/treeadd"
)

// TestConcurrentRunsIsolated guards the per-job-isolation assumption
// oldend's worker pool relies on: two different benchmarks executing
// simultaneously — each on its own machine, runtime and trace recorder —
// must produce exactly the trace digests and statistics of their
// single-run goldens. Any cross-talk through package-level state (shared
// RNGs, interning tables, counters) shows up as a digest or stats
// divergence here, and as a data race under `go test -race`.
func TestConcurrentRunsIsolated(t *testing.T) {
	type outcome struct {
		digest trace.Digest
		stats  machine.StatsSnapshot
		cycles int64
		ok     bool
	}
	runOnce := func(name string, kind coherence.Kind) outcome {
		info, ok := bench.Get(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		rec := trace.New(0)
		res := info.Run(bench.Config{Procs: 4, Scheme: kind, Trace: rec})
		return outcome{digest: rec.Digest(), stats: res.Stats, cycles: res.Cycles, ok: res.Verified()}
	}

	configs := []struct {
		name string
		kind coherence.Kind
	}{
		{"treeadd", coherence.LocalKnowledge},
		{"em3d", coherence.GlobalKnowledge},
	}

	// Sequential goldens first, in isolation.
	golden := make([]outcome, len(configs))
	for i, c := range configs {
		golden[i] = runOnce(c.name, c.kind)
		if !golden[i].ok {
			t.Fatalf("%s golden run failed verification", c.name)
		}
	}

	// Now the same configurations concurrently, several times over, with
	// both benchmarks in flight at once in every round.
	const rounds = 3
	for round := 0; round < rounds; round++ {
		got := make([]outcome, len(configs))
		var wg sync.WaitGroup
		for i, c := range configs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got[i] = runOnce(c.name, c.kind)
			}()
		}
		wg.Wait()
		for i, c := range configs {
			if !got[i].ok {
				t.Fatalf("round %d: %s failed verification under concurrency", round, c.name)
			}
			if got[i].digest != golden[i].digest {
				t.Errorf("round %d: %s trace digest diverged under concurrency:\n got %s\nwant %s",
					round, c.name, got[i].digest, golden[i].digest)
			}
			if got[i].stats != golden[i].stats {
				t.Errorf("round %d: %s stats diverged under concurrency:\n got %+v\nwant %+v",
					round, c.name, got[i].stats, golden[i].stats)
			}
			if got[i].cycles != golden[i].cycles {
				t.Errorf("round %d: %s cycles %d != golden %d",
					round, c.name, got[i].cycles, golden[i].cycles)
			}
		}
	}
}

// TestConcurrentRecordedRunsIsolated repeats the isolation check through
// RunRecorded — the exact entry point oldend's executor uses — so the
// record (metrics dump included) is also a pure function of the
// configuration when other runs share the process.
func TestConcurrentRecordedRunsIsolated(t *testing.T) {
	infoT, _ := bench.Get("treeadd")
	infoE, _ := bench.Get("em3d")
	cfgT := bench.Config{Procs: 2, Scheme: coherence.LocalKnowledge}
	cfgE := bench.Config{Procs: 4, Scheme: coherence.Bilateral}

	_, goldT := bench.RunRecorded(infoT, cfgT)
	_, goldE := bench.RunRecorded(infoE, cfgE)

	var wg sync.WaitGroup
	var gotT, gotE = goldT, goldE
	wg.Add(2)
	go func() { defer wg.Done(); _, gotT = bench.RunRecorded(infoT, cfgT) }()
	go func() { defer wg.Done(); _, gotE = bench.RunRecorded(infoE, cfgE) }()
	wg.Wait()

	if gotT.TraceDigest != goldT.TraceDigest || gotT.Cycles != goldT.Cycles {
		t.Errorf("treeadd record diverged under concurrency: %s / %d vs %s / %d",
			gotT.TraceDigest, gotT.Cycles, goldT.TraceDigest, goldT.Cycles)
	}
	if gotE.TraceDigest != goldE.TraceDigest || gotE.Cycles != goldE.Cycles {
		t.Errorf("em3d record diverged under concurrency: %s / %d vs %s / %d",
			gotE.TraceDigest, gotE.Cycles, goldE.TraceDigest, goldE.Cycles)
	}
	for _, pair := range []struct {
		name      string
		got, want map[string]int64
	}{{"treeadd", gotT.Metrics, goldT.Metrics}, {"em3d", gotE.Metrics, goldE.Metrics}} {
		if len(pair.got) != len(pair.want) {
			t.Errorf("%s metrics dump changed size under concurrency: %d != %d",
				pair.name, len(pair.got), len(pair.want))
			continue
		}
		for k, v := range pair.want {
			if pair.got[k] != v {
				t.Errorf("%s metric %s = %d under concurrency, want %d", pair.name, k, pair.got[k], v)
			}
		}
	}
}
