package bench_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"

	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/treeadd"
)

var update = flag.Bool("update", false,
	"rewrite testdata/trace_digests.golden from the current simulation")

// goldenScale pins the problem size of the golden runs explicitly, so a
// future change to bench.DefaultScale cannot silently re-key the file.
const goldenScale = 16

const goldenPath = "testdata/trace_digests.golden"

// TestTraceDigestGoldens pins the full trace digest — event count, hash
// and per-kind counts — for three benchmarks under all three coherence
// schemes at P=4. The digests change whenever the cost model, the
// protocol, or the event vocabulary changes; that is intentional. Review
// the diff, then regenerate with:
//
//	go test ./internal/bench -run TestTraceDigestGoldens -update
func TestTraceDigestGoldens(t *testing.T) {
	var lines []string
	for _, name := range []string{"treeadd", "bisort", "em3d"} {
		for _, s := range schemes {
			info, ok := bench.Get(name)
			if !ok {
				t.Fatalf("benchmark %q not registered", name)
			}
			rec := trace.New(0)
			res := info.Run(bench.Config{Procs: 4, Scale: goldenScale, Scheme: s.kind, Trace: rec})
			if !res.Verified() {
				t.Fatalf("%s under %s: check %#x != %#x", name, s.name, res.Check, res.WantCheck)
			}
			lines = append(lines, fmt.Sprintf("%s %s P=4 scale=1/%d %s",
				name, s.name, goldenScale, rec.Digest()))
		}
	}
	got := strings.Join(lines, "\n") + "\n"

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	for i, g := range lines {
		w := ""
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("digest mismatch:\n  got:  %s\n  want: %s", g, w)
		}
	}
	if len(wantLines) != len(lines) {
		t.Errorf("golden file has %d lines, run produced %d", len(wantLines), len(lines))
	}
}
