package em3d

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rt"
)

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 8})
		if !res.Verified() {
			t.Fatalf("P=%d: checksum %#x != %#x", procs, res.Check, res.WantCheck)
		}
	}
}

func TestCorrectnessAllSchemes(t *testing.T) {
	for _, scheme := range []coherence.Kind{coherence.LocalKnowledge, coherence.GlobalKnowledge, coherence.Bilateral} {
		res := Run(bench.Config{Procs: 4, Scale: 8, Scheme: scheme})
		if !res.Verified() {
			t.Fatalf("%v: checksum mismatch", scheme)
		}
	}
}

func TestUsesBothMechanisms(t *testing.T) {
	res := Run(bench.Config{Procs: 8, Scale: 8})
	if res.Stats.Migrations == 0 {
		t.Error("em3d must migrate along the node lists")
	}
	if res.Stats.CacheableReads == 0 || res.Stats.Misses == 0 {
		t.Error("em3d must cache the cross edges")
	}
}

func TestMigrateOnlyIsMuchWorse(t *testing.T) {
	// Table 2: EM3D speedup 12.0 with the heuristic vs 0.05 with
	// migrate-only at 32 processors — chasing every low-locality edge
	// with a migration is catastrophic.
	h := Run(bench.Config{Procs: 8, Scale: 8})
	m := Run(bench.Config{Procs: 8, Scale: 8, Mode: rt.MigrateOnly})
	if !m.Verified() {
		t.Fatal("migrate-only run must still be correct")
	}
	if float64(m.Cycles) < 3*float64(h.Cycles) {
		t.Errorf("migrate-only %d vs heuristic %d; expected ≫", m.Cycles, h.Cycles)
	}
}

func TestSpeedupShape(t *testing.T) {
	base := Run(bench.Config{Baseline: true, Scale: 2})
	sp4 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 4, Scale: 2}).Cycles)
	sp8 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 8, Scale: 2}).Cycles)
	if sp4 < 1.5 {
		t.Errorf("speedup at P=4 = %.2f; want > 1.5", sp4)
	}
	if sp8 < sp4 {
		t.Errorf("speedup not growing: %.2f at 4, %.2f at 8", sp4, sp8)
	}
}

func TestHeuristicChoice(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	l := r.FindLoop("all_compute/while")
	if l == nil {
		t.Fatal("node loop not found")
	}
	if !l.Parallel || l.Mech != core.ChooseMigrate || l.Var != "l" {
		t.Fatalf("node loop choice = %s %s parallel=%v; want migrate l (parallelizable)",
			l.Mech, l.Var, l.Parallel)
	}
	if r.UsesMigrationOnly() {
		t.Fatal("em3d is an M+C benchmark")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 8})
	b := Run(bench.Config{Procs: 4, Scale: 8})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
