// Package em3d implements the EM3D benchmark: propagation of
// electromagnetic waves through a 3D object, represented as a bipartite
// graph of E nodes and H nodes (paper Table 1: 2K nodes). At each time
// step, new E values are computed from a weighted sum of neighboring H
// nodes, then vice versa.
//
// The heuristic's choice (Table 2: M+C): the per-processor node lists have
// high locality and are walked by a parallelizable loop, so the nodes use
// migration; the cross edges have low locality, so neighbor reads cache.
// The paper's implementation "performs comparably to the ghost node
// implementation of Culler et al., yet does not require substantial
// modification to the sequential code."
package em3d

import (
	"math"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// As in the original Olden em3d, node values live in per-processor packed
// arrays and nodes carry pointers to value slots; edges point directly at
// the neighbor's value slot ("from_values"). Packing gives cached line
// fetches spatial locality: one 64-byte line holds eight neighbor values.
//
// Node layout: value-slot pointer @0, next @8, then degree pairs of
// (neighbor value-slot pointer, weight), 16 bytes each.
const (
	offSlot  = 0
	offNext  = 8
	offEdges = 16
	edgeSize = 16
)

func nodeSize(degree int) uint32 { return uint32(offEdges + degree*edgeSize) }

func offNbr(i int) uint32    { return uint32(offEdges + i*edgeSize) }
func offWeight(i int) uint32 { return uint32(offEdges + i*edgeSize + 8) }

// Paper-scale parameters.
const (
	paperNodes = 2048 // total nodes (half E, half H)
	degree     = 10   // edges per node
	iterations = 8    // simulated time steps
	pctRemote  = 20   // percent of edges crossing processors (Table 3
	// reports 19.4% of EM3D's cacheable reads are remote)
)

// workPerNode is the per-node computation besides the edge reads.
const workPerNode = 320

// futureBookkeeping models the per-node futurecall/touch cost of the
// parallelizable node loop.
const futureBookkeeping = 38

// KernelSource is the kernel in the mini-C subset. The node-list walk is
// parallelizable (futurecall per node), so the heuristic migrates l even
// though the default affinity is below the threshold; the neighbor
// dereferences inside compute_node are cached.
const KernelSource = `
struct node {
  float value;
  struct node *next;
  struct node *from;
  float coeff;
};

void compute_node(struct node *n) {
  n->value = n->value - n->from->value * n->coeff;
}

void all_compute(struct node *l) {
  while (l) {
    futurecall(compute_node(l));
    l = l->next;
  }
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "em3d",
		Description: "Simulates the propagation of electro-magnetic waves in a 3D object",
		PaperSize:   "2K nodes",
		Choice:      "M+C",
		Run:         Run,
		Source:      KernelSource,
		Phased:      &bench.Phased{Build: buildPhase, Kernel: kernelPhase},
	})
}

// graph is the deterministic problem instance, generated once in plain Go
// so the sequential reference and the simulated run compute on identical
// data.
type graph struct {
	n         int // nodes per side
	value     [2][]float64
	nbr       [2][][]int // [side][node][edge] -> index on the other side
	weight    [2][][]float64
	procOf    func(i int) int
	headOf    [2][]int // first node index per processor, -1 if none
	nextOf    [2][]int // intra-processor list threading, -1 ends
	procCount int
}

func buildGraph(nPerSide, procs int, rng *rand.Rand) *graph {
	g := &graph{n: nPerSide, procCount: procs}
	for side := 0; side < 2; side++ {
		g.value[side] = make([]float64, nPerSide)
		g.nbr[side] = make([][]int, nPerSide)
		g.weight[side] = make([][]float64, nPerSide)
		for i := 0; i < nPerSide; i++ {
			g.value[side][i] = rng.Float64()
		}
	}
	g.procOf = func(i int) int { return bench.BlockedProc(i, nPerSide, procs) }
	for side := 0; side < 2; side++ {
		for i := 0; i < nPerSide; i++ {
			p := g.procOf(i)
			lo, hi := blockBounds(nPerSide, procs, p)
			for e := 0; e < degree; e++ {
				var j int
				if rng.Intn(100) < pctRemote || hi-lo == 0 {
					// Remote edges connect physically adjacent
					// partitions of the 3D object, so cached lines
					// of a neighbour's packed values get reused.
					np := p + 1
					if np >= procs {
						np = 0
					}
					if rng.Intn(2) == 0 && p > 0 {
						np = p - 1
					}
					nlo, nhi := blockBounds(nPerSide, procs, np)
					if nhi == nlo {
						j = rng.Intn(nPerSide)
					} else {
						j = nlo + rng.Intn(nhi-nlo)
					}
				} else {
					j = lo + rng.Intn(hi-lo)
				}
				g.nbr[side][i] = append(g.nbr[side][i], j)
				g.weight[side][i] = append(g.weight[side][i], rng.Float64()/float64(degree))
			}
		}
		// Thread per-processor lists in index order.
		g.headOf[side] = make([]int, procs)
		g.nextOf[side] = make([]int, nPerSide)
		for p := range g.headOf[side] {
			g.headOf[side][p] = -1
		}
		last := make([]int, procs)
		for p := range last {
			last[p] = -1
		}
		for i := 0; i < nPerSide; i++ {
			p := g.procOf(i)
			g.nextOf[side][i] = -1
			if last[p] < 0 {
				g.headOf[side][p] = i
			} else {
				g.nextOf[side][last[p]] = i
			}
			last[p] = i
		}
	}
	return g
}

func blockBounds(n, procs, p int) (lo, hi int) {
	lo = p * n / procs
	hi = (p + 1) * n / procs
	return lo, hi
}

// reference runs the computation on plain Go slices.
func (g *graph) reference(iters int) uint64 {
	val := [2][]float64{
		append([]float64(nil), g.value[0]...),
		append([]float64(nil), g.value[1]...),
	}
	for it := 0; it < iters; it++ {
		for side := 0; side < 2; side++ {
			other := 1 - side
			for i := 0; i < g.n; i++ {
				v := val[side][i]
				for e := 0; e < degree; e++ {
					v -= g.weight[side][i][e] * val[other][g.nbr[side][i][e]]
				}
				val[side][i] = v
			}
		}
	}
	return checksum(val)
}

func checksum(val [2][]float64) uint64 {
	var sum uint64
	for side := 0; side < 2; side++ {
		for i, v := range val[side] {
			sum ^= math.Float64bits(v) + uint64(i)
		}
	}
	return sum
}

// built is the immutable build-phase state: the problem instance, the
// heap addresses of its materialization, and the precomputed reference
// checksum (pure host arithmetic, so it belongs to the build).
type built struct {
	g     *graph
	nodes [2][]gaddr.GP
	slots [2][]gaddr.GP
	want  uint64
}

// buildPhase generates the bipartite graph and materializes it through
// the raw heap API (no simulated accesses).
func buildPhase(cfg bench.Config, r *rt.Runtime) any {
	nPerSide := cfg.Scaled(paperNodes, 512) / 2
	rng := rand.New(rand.NewSource(42))
	g := buildGraph(nPerSide, r.P(), rng)

	// Materialize into the distributed heap (untimed build phase): first
	// the packed per-processor value arrays, then the node records.
	slots := [2][]gaddr.GP{make([]gaddr.GP, g.n), make([]gaddr.GP, g.n)}
	for p := 0; p < r.P(); p++ {
		for side := 0; side < 2; side++ {
			lo, hi := blockBounds(g.n, r.P(), p)
			if hi == lo {
				continue
			}
			block := bench.RawAlloc(r, p, uint32(8*(hi-lo)))
			for i := lo; i < hi; i++ {
				slots[side][i] = rt.FieldPtr(block, uint32(8*(i-lo)))
			}
		}
	}
	nodes := [2][]gaddr.GP{make([]gaddr.GP, g.n), make([]gaddr.GP, g.n)}
	for side := 0; side < 2; side++ {
		for i := 0; i < g.n; i++ {
			nodes[side][i] = bench.RawAlloc(r, g.procOf(i), nodeSize(degree))
		}
	}
	for side := 0; side < 2; side++ {
		other := 1 - side
		for i := 0; i < g.n; i++ {
			n := nodes[side][i]
			bench.RawStorePtr(r, n, offSlot, slots[side][i])
			bench.RawStore(r, slots[side][i], 0, math.Float64bits(g.value[side][i]))
			next := gaddr.Nil
			if nx := g.nextOf[side][i]; nx >= 0 {
				next = nodes[side][nx]
			}
			bench.RawStorePtr(r, n, offNext, next)
			for e := 0; e < degree; e++ {
				bench.RawStorePtr(r, n, offNbr(e), slots[other][g.nbr[side][i][e]])
				bench.RawStore(r, n, offWeight(e), math.Float64bits(g.weight[side][i][e]))
			}
		}
	}
	return &built{g: g, nodes: nodes, slots: slots, want: g.reference(iterations)}
}

// kernelPhase times the propagation sweep and verifies it against the
// precomputed sequential reference.
func kernelPhase(cfg bench.Config, r *rt.Runtime, st any) bench.Result {
	b := st.(*built)
	g, nodes, slots := b.g, b.nodes, b.slots

	siteNode := &rt.Site{Name: "em3d.node", Mech: rt.Migrate}
	siteEdge := &rt.Site{Name: "em3d.edge", Mech: rt.Cache}

	walk := func(t *rt.Thread, head gaddr.GP) {
		for n := head; !n.IsNil(); n = t.LoadPtr(siteNode, n, offNext) {
			slot := t.LoadPtr(siteNode, n, offSlot)
			v := t.LoadFloat(siteNode, slot, 0)
			for e := 0; e < degree; e++ {
				nb := t.LoadPtr(siteNode, n, offNbr(e))
				w := t.LoadFloat(siteNode, n, offWeight(e))
				v -= w * t.LoadFloat(siteEdge, nb, 0)
			}
			t.StoreFloat(siteNode, slot, 0, v)
			t.Work(workPerNode)
			if !cfg.Baseline {
				t.Work(futureBookkeeping)
			}
		}
	}

	iters := iterations
	r.ResetForKernel()
	r.Run(0, func(t *rt.Thread) {
		for it := 0; it < iters; it++ {
			for side := 0; side < 2; side++ {
				if cfg.Baseline {
					for p := 0; p < r.P(); p++ {
						if h := g.headOf[side][p]; h >= 0 {
							walk(t, nodes[side][h])
						}
					}
					continue
				}
				var futs []*rt.Future[int]
				for p := 0; p < r.P(); p++ {
					h := g.headOf[side][p]
					if h < 0 {
						continue
					}
					head := nodes[side][h]
					futs = append(futs, rt.Spawn(t, func(c *rt.Thread) int {
						walk(c, head)
						return 0
					}))
				}
				for _, f := range futs {
					f.Touch(t)
				}
			}
		}
	})

	// Read back the final values for verification.
	final := [2][]float64{make([]float64, g.n), make([]float64, g.n)}
	for side := 0; side < 2; side++ {
		for i := 0; i < g.n; i++ {
			final[side][i] = math.Float64frombits(bench.RawLoad(r, slots[side][i], 0))
		}
	}

	return bench.Result{
		Name:      "em3d",
		Procs:     r.P(),
		Cycles:    r.M.Makespan(),
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     checksum(final),
		WantCheck: b.want,
	}
}

// Run executes EM3D under the configuration.
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	return kernelPhase(cfg, r, buildPhase(cfg, r))
}
