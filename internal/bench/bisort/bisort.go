package bisort

import (
	"repro/internal/bench"
	"repro/internal/gaddr"
	"repro/internal/rt"
)

// Node layout: value @0, left @8, right @16.
const (
	offVal   = 0
	offLeft  = 8
	offRight = 16
	nodeSz   = 24
)

const (
	paperValues = 128 << 10 // 128K integers = 2^17
	nodeWork    = 22        // per node visited in sort/merge recursion
	stepWork    = 25        // per search-pointer step
	swapWork    = 14        // per node pair in a subtree content swap
	futureCost  = 38
)

// KernelSource is the merge kernel in the mini-C subset: the recursion on
// root migrates (1−0.3² = 91%), while the pl/pr subtree search caches
// (averaged branch affinity 70%).
const KernelSource = `
struct tree {
  int value;
  struct tree *left;
  struct tree *right;
};

int BiMerge(struct tree *root, int spr, int dir) {
  struct tree *pl = root->left;
  struct tree *pr = root->right;
  while (pl) {
    if ((pl->value > pr->value) == dir) {
      pl = pl->left;
      pr = pr->left;
    } else {
      pl = pl->right;
      pr = pr->right;
    }
  }
  if (root->left != NULL) {
    root->value = touch(futurecall(BiMerge(root->left, root->value, dir)));
    spr = BiMerge(root->right, spr, dir);
  }
  return spr;
}
`

func init() {
	bench.Register(bench.Info{
		Name:        "bisort",
		Description: "Sorts by creating two disjoint bitonic sequences and then merging them",
		PaperSize:   "128K integers",
		Choice:      "M+C",
		Run:         Run,
		Source:      KernelSource,
		Phased:      &bench.Phased{Build: buildPhase, Kernel: kernelPhase},
	})
}

type state struct {
	siteRoot   *rt.Site // recursion over the tree: migrate
	siteSearch *rt.Site // pl/pr subtree search: cache
	siteSwap   *rt.Site // subtree content swaps: migrate
	parallel   bool
	spawnDepth int
}

// build allocates a perfect tree mirroring refBuild, distributing subtrees
// at the machine's distribution depth (untimed: Bisort reports kernel
// time).
func build(r *rt.Runtime, levels int, next *uint64) gaddr.GP {
	var rec func(level, proc, stride int) gaddr.GP
	rec = func(level, proc, stride int) gaddr.GP {
		if level == 0 {
			return gaddr.Nil
		}
		*next = *next*6364136223846793005 + 1442695040888963407
		n := bench.RawAlloc(r, proc, nodeSz)
		bench.RawStore(r, n, offVal, uint64(int64(*next>>40)))
		rp := proc
		if stride > 1 {
			rp = proc + stride/2
		}
		bench.RawStorePtr(r, n, offLeft, rec(level-1, proc, stride/2))
		bench.RawStorePtr(r, n, offRight, rec(level-1, rp, stride/2))
		return n
	}
	return rec(levels, 0, r.P())
}

// swapTree deep-swaps the values of two same-shape subtrees. Following the
// paper, the trees' *contents* are exchanged (not pointers), structured so
// that "a large amount of data is touched on each processor between
// migrations": collect one side into the thread's state, exchange with the
// other side, write back — three migrations per swap instead of a per-node
// ping-pong. The walks migrate (the subtrees are internally local).
func (s *state) swapTree(t *rt.Thread, a, b gaddr.GP) {
	if a.IsNil() {
		return
	}
	var buf []int64
	s.collectValues(t, b, &buf)
	i := 0
	s.exchangeValues(t, a, buf, &i)
	i = 0
	s.storeValues(t, b, buf, &i)
}

// collectValues reads a subtree's values in preorder.
func (s *state) collectValues(t *rt.Thread, n gaddr.GP, buf *[]int64) {
	if n.IsNil() {
		return
	}
	*buf = append(*buf, t.LoadInt(s.siteSwap, n, offVal))
	t.Work(swapWork)
	s.collectValues(t, t.LoadPtr(s.siteSwap, n, offLeft), buf)
	s.collectValues(t, t.LoadPtr(s.siteSwap, n, offRight), buf)
}

// exchangeValues stores buf into the subtree in preorder while collecting
// the old values back into buf.
func (s *state) exchangeValues(t *rt.Thread, n gaddr.GP, buf []int64, i *int) {
	if n.IsNil() {
		return
	}
	old := t.LoadInt(s.siteSwap, n, offVal)
	t.StoreInt(s.siteSwap, n, offVal, buf[*i])
	buf[*i] = old
	*i++
	t.Work(swapWork)
	s.exchangeValues(t, t.LoadPtr(s.siteSwap, n, offLeft), buf, i)
	s.exchangeValues(t, t.LoadPtr(s.siteSwap, n, offRight), buf, i)
}

// storeValues writes buf into the subtree in preorder.
func (s *state) storeValues(t *rt.Thread, n gaddr.GP, buf []int64, i *int) {
	if n.IsNil() {
		return
	}
	t.StoreInt(s.siteSwap, n, offVal, buf[*i])
	*i++
	t.Work(swapWork)
	s.storeValues(t, t.LoadPtr(s.siteSwap, n, offLeft), buf, i)
	s.storeValues(t, t.LoadPtr(s.siteSwap, n, offRight), buf, i)
}

// bimerge is BiMerge compiled against the runtime.
func (s *state) bimerge(t *rt.Thread, root gaddr.GP, spr int64, dir bool, depth int) int64 {
	rv := t.LoadInt(s.siteRoot, root, offVal)
	rightex := (rv > spr) != dir
	if rightex {
		t.StoreInt(s.siteRoot, root, offVal, spr)
		spr = rv
	}
	pl := t.LoadPtr(s.siteRoot, root, offLeft)
	pr := t.LoadPtr(s.siteRoot, root, offRight)
	for !pl.IsNil() {
		t.Work(stepWork)
		lv := t.LoadInt(s.siteSearch, pl, offVal)
		rv2 := t.LoadInt(s.siteSearch, pr, offVal)
		elem := (lv > rv2) != dir
		if elem {
			t.StoreInt(s.siteSearch, pl, offVal, rv2)
			t.StoreInt(s.siteSearch, pr, offVal, lv)
		}
		if rightex {
			if elem {
				sa := t.LoadPtr(s.siteSearch, pl, offRight)
				sb := t.LoadPtr(s.siteSearch, pr, offRight)
				rt.CallVoid(t, func() { s.swapTree(t, sa, sb) })
				pl = t.LoadPtr(s.siteSearch, pl, offLeft)
				pr = t.LoadPtr(s.siteSearch, pr, offLeft)
			} else {
				pl = t.LoadPtr(s.siteSearch, pl, offRight)
				pr = t.LoadPtr(s.siteSearch, pr, offRight)
			}
		} else {
			if elem {
				sa := t.LoadPtr(s.siteSearch, pl, offLeft)
				sb := t.LoadPtr(s.siteSearch, pr, offLeft)
				rt.CallVoid(t, func() { s.swapTree(t, sa, sb) })
				pl = t.LoadPtr(s.siteSearch, pl, offRight)
				pr = t.LoadPtr(s.siteSearch, pr, offRight)
			} else {
				pl = t.LoadPtr(s.siteSearch, pl, offLeft)
				pr = t.LoadPtr(s.siteSearch, pr, offLeft)
			}
		}
	}
	t.Work(nodeWork)
	left := t.LoadPtr(s.siteRoot, root, offLeft)
	if left.IsNil() {
		return spr
	}
	right := t.LoadPtr(s.siteRoot, root, offRight)
	rootVal := t.LoadInt(s.siteRoot, root, offVal)
	var newRoot, newSpr int64
	if s.parallel && depth < s.spawnDepth {
		f := rt.Spawn(t, func(c *rt.Thread) int64 {
			return s.bimerge(c, left, rootVal, dir, depth+1)
		})
		newSpr = rt.Call(t, func() int64 { return s.bimerge(t, right, spr, dir, depth+1) })
		newRoot = f.Touch(t)
	} else {
		if s.parallel {
			t.Work(futureCost)
		}
		newRoot = rt.Call(t, func() int64 { return s.bimerge(t, left, rootVal, dir, depth+1) })
		newSpr = rt.Call(t, func() int64 { return s.bimerge(t, right, spr, dir, depth+1) })
	}
	t.StoreInt(s.siteRoot, root, offVal, newRoot)
	return newSpr
}

// bisort is BiSort compiled against the runtime.
func (s *state) bisort(t *rt.Thread, root gaddr.GP, spr int64, dir bool, depth int) int64 {
	t.Work(nodeWork)
	left := t.LoadPtr(s.siteRoot, root, offLeft)
	if left.IsNil() {
		rv := t.LoadInt(s.siteRoot, root, offVal)
		if (rv > spr) != dir {
			t.StoreInt(s.siteRoot, root, offVal, spr)
			spr = rv
		}
		return spr
	}
	right := t.LoadPtr(s.siteRoot, root, offRight)
	rootVal := t.LoadInt(s.siteRoot, root, offVal)
	var newRoot int64
	if s.parallel && depth < s.spawnDepth {
		f := rt.Spawn(t, func(c *rt.Thread) int64 {
			return s.bisort(c, left, rootVal, dir, depth+1)
		})
		spr = rt.Call(t, func() int64 { return s.bisort(t, right, spr, !dir, depth+1) })
		newRoot = f.Touch(t)
	} else {
		if s.parallel {
			t.Work(futureCost)
		}
		newRoot = rt.Call(t, func() int64 { return s.bisort(t, left, rootVal, dir, depth+1) })
		spr = rt.Call(t, func() int64 { return s.bisort(t, right, spr, !dir, depth+1) })
	}
	t.StoreInt(s.siteRoot, root, offVal, newRoot)
	return rt.Call(t, func() int64 { return s.bimerge(t, root, spr, dir, depth) })
}

// levels converts the configured problem size to the tree depth (2^levels
// values including the spare).
func levelsFor(cfg bench.Config) int {
	n := cfg.Scaled(paperValues, 1<<9)
	l := 0
	for (1 << uint(l)) < n {
		l++
	}
	return l
}

// built is the immutable build-phase state: the tree root, the initial
// spare value, and the precomputed reference checksum.
type built struct {
	root      gaddr.GP
	levels    int
	spr       int64
	distDepth int
	want      uint64
}

// buildPhase allocates the tree through the raw heap API.
func buildPhase(cfg bench.Config, r *rt.Runtime) any {
	levels := levelsFor(cfg)

	next := uint64(99)
	root := build(r, levels, &next)
	spr := int64(next>>40) + 1

	distDepth := 0
	for 1<<uint(distDepth) < r.P() {
		distDepth++
	}
	return &built{root: root, levels: levels, spr: spr, distDepth: distDepth,
		want: reference(levels)}
}

// kernelPhase times the two bitonic sort passes and verifies the final
// tree contents.
func kernelPhase(cfg bench.Config, r *rt.Runtime, st any) bench.Result {
	b := st.(*built)
	root, spr := b.root, b.spr
	s := &state{
		siteRoot:   &rt.Site{Name: "bisort.root", Mech: rt.Migrate},
		siteSearch: &rt.Site{Name: "bisort.search", Mech: rt.Cache},
		siteSwap:   &rt.Site{Name: "bisort.swap", Mech: rt.Migrate},
		parallel:   !cfg.Baseline,
		spawnDepth: b.distDepth + 2,
	}

	r.ResetForKernel()
	var check uint64
	var cycles int64
	r.Run(0, func(t *rt.Thread) {
		spr = rt.Call(t, func() int64 { return s.bisort(t, root, spr, false, 0) })
		spr = rt.Call(t, func() int64 { return s.bisort(t, root, spr, true, 0) })
		cycles = r.M.Makespan() // the verification walk below is not program time
		h := uint64(1469598103934665603)
		var walk func(n gaddr.GP)
		walk = func(n gaddr.GP) {
			if n.IsNil() {
				return
			}
			walk(t.LoadPtr(s.siteRoot, n, offLeft))
			h ^= uint64(t.LoadInt(s.siteRoot, n, offVal))
			h *= 1099511628211
			walk(t.LoadPtr(s.siteRoot, n, offRight))
		}
		walk(root)
		h ^= uint64(spr)
		h *= 1099511628211
		check = h
	})

	return bench.Result{
		Name:      "bisort",
		Procs:     r.P(),
		Cycles:    cycles,
		Stats:     r.M.Stats.Snapshot(),
		Pages:     r.PagesCachedTotal(),
		Check:     check,
		WantCheck: b.want,
	}
}

// Run executes Bisort under the configuration.
func Run(cfg bench.Config) bench.Result {
	r := cfg.NewRuntime()
	return kernelPhase(cfg, r, buildPhase(cfg, r))
}
