package bisort

import (
	"sort"
	"testing"
)

// TestReferenceSorts checks the adaptive bitonic algorithm itself: after a
// forward sort, in-order + spare is ascending and a permutation of the
// input; after a backward sort it is descending.
func TestReferenceSorts(t *testing.T) {
	for _, levels := range []int{1, 2, 3, 4, 7, 10} {
		next := uint64(99)
		root := refBuild(levels, &next)
		spr := int64(next>>40) + 1
		var input []int64
		refInorder(root, &input)
		input = append(input, spr)

		spr = refBisort(root, spr, false)
		var fwd []int64
		refInorder(root, &fwd)
		fwd = append(fwd, spr)
		if !sort.SliceIsSorted(fwd, func(i, j int) bool { return fwd[i] < fwd[j] }) {
			t.Fatalf("levels %d: forward sort not ascending: %v", levels, fwd)
		}
		checkPerm(t, input, fwd)

		spr = refBisort(root, spr, true)
		var bwd []int64
		refInorder(root, &bwd)
		bwd = append(bwd, spr)
		if !sort.SliceIsSorted(bwd, func(i, j int) bool { return bwd[i] > bwd[j] }) {
			t.Fatalf("levels %d: backward sort not descending: %v", levels, bwd)
		}
		checkPerm(t, input, bwd)
	}
}

func checkPerm(t *testing.T, a, b []int64) {
	t.Helper()
	as := append([]int64(nil), a...)
	bs := append([]int64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			t.Fatal("not a permutation of the input")
		}
	}
}
