package bisort

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/rt"
)

func TestCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		res := Run(bench.Config{Procs: procs, Scale: 256})
		if !res.Verified() {
			t.Fatalf("P=%d: checksum %#x != %#x", procs, res.Check, res.WantCheck)
		}
	}
}

func TestSpeedupModest(t *testing.T) {
	// Table 2: Bisort reaches only 6.33 at 32 processors; speedups grow
	// but stay well below linear.
	base := Run(bench.Config{Baseline: true, Scale: 32})
	sp2 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 2, Scale: 32}).Cycles)
	sp8 := float64(base.Cycles) / float64(Run(bench.Config{Procs: 8, Scale: 32}).Cycles)
	if sp2 < 1.0 {
		t.Errorf("P=2 speedup %.2f; want ≥ 1 (paper: 1.35)", sp2)
	}
	if sp8 < sp2 {
		t.Errorf("speedup shrank: %.2f → %.2f", sp2, sp8)
	}
	if sp8 > 7 {
		t.Errorf("P=8 speedup %.2f; Bisort should be well below linear", sp8)
	}
}

func TestMigrateOnlyClose(t *testing.T) {
	// Table 2: heuristic 6.33 vs migrate-only 6.13 at 32 — close.
	h := Run(bench.Config{Procs: 8, Scale: 64})
	m := Run(bench.Config{Procs: 8, Scale: 64, Mode: rt.MigrateOnly})
	if !m.Verified() {
		t.Fatal("migrate-only must verify")
	}
	ratio := float64(m.Cycles) / float64(h.Cycles)
	if ratio < 0.5 || ratio > 3 {
		t.Errorf("migrate-only/heuristic cycle ratio %.2f; the paper reports them close", ratio)
	}
}

func TestHeuristicChoice(t *testing.T) {
	prog, err := lang.Parse(KernelSource)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Analyze(prog, core.DefaultParams())
	rec := r.FindLoop("BiMerge/rec")
	if rec == nil || rec.Mech != core.ChooseMigrate || rec.Var != "root" {
		t.Fatal("merge recursion must migrate root")
	}
	search := r.FindLoop("BiMerge/while")
	if search == nil {
		t.Fatal("search loop not found")
	}
	if search.Mech != core.ChooseCache {
		t.Fatalf("search loop = %s %s; tree searches cache", search.Mech, search.Var)
	}
	if r.UsesMigrationOnly() {
		t.Fatal("bisort is an M+C benchmark")
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(bench.Config{Procs: 4, Scale: 256})
	b := Run(bench.Config{Procs: 4, Scale: 256})
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Fatal("runs must be deterministic")
	}
}
