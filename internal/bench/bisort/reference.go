// Package bisort implements the Bisort benchmark: the Bilardi–Nicolau
// adaptive bitonic sort over a binary tree (paper Table 1: 128K integers),
// run forward and then backward as in the Olden benchmark.
//
// Heuristic choice (Table 2: M+C): the recursive sort/merge follows the
// tree (update affinity 1−0.3² = 91% ≥ threshold ⇒ migration), while the
// pair of search pointers that walks the two subtrees during a merge is a
// tree search (averaged affinity 70% ⇒ caching). Subtree exchanges swap
// the trees' *contents* rather than pointers — expensive, but it preserves
// the locality the second sort depends on; one side of the swap migrates,
// the other is cached.
package bisort

// rnode is the plain-Go mirror of the tree node.
type rnode struct {
	val  int64
	l, r *rnode
}

// refBuild builds a perfect tree of 2^levels − 1 nodes with deterministic
// pseudo-random values; next is the value counter.
func refBuild(levels int, next *uint64) *rnode {
	if levels == 0 {
		return nil
	}
	*next = *next*6364136223846793005 + 1442695040888963407
	n := &rnode{val: int64(*next >> 40)}
	n.l = refBuild(levels-1, next)
	n.r = refBuild(levels-1, next)
	return n
}

// refSwapTree deep-swaps the values of two same-shape subtrees.
func refSwapTree(a, b *rnode) {
	if a == nil {
		return
	}
	a.val, b.val = b.val, a.val
	refSwapTree(a.l, b.l)
	refSwapTree(a.r, b.r)
}

// refBimerge merges a bitonic tree (root, spr) into sorted order along dir
// (false = ascending), returning the new spare.
func refBimerge(root *rnode, spr int64, dir bool) int64 {
	rightex := (root.val > spr) != dir
	if rightex {
		root.val, spr = spr, root.val
	}
	pl, pr := root.l, root.r
	for pl != nil {
		elem := (pl.val > pr.val) != dir
		if rightex {
			if elem {
				pl.val, pr.val = pr.val, pl.val
				refSwapTree(pl.r, pr.r)
				pl, pr = pl.l, pr.l
			} else {
				pl, pr = pl.r, pr.r
			}
		} else {
			if elem {
				pl.val, pr.val = pr.val, pl.val
				refSwapTree(pl.l, pr.l)
				pl, pr = pl.r, pr.r
			} else {
				pl, pr = pl.l, pr.l
			}
		}
	}
	if root.l != nil {
		root.val = refBimerge(root.l, root.val, dir)
		spr = refBimerge(root.r, spr, dir)
	}
	return spr
}

// refBisort sorts the tree plus spare along dir and returns the new spare.
func refBisort(root *rnode, spr int64, dir bool) int64 {
	if root.l == nil {
		if (root.val > spr) != dir {
			root.val, spr = spr, root.val
		}
		return spr
	}
	root.val = refBisort(root.l, root.val, dir)
	spr = refBisort(root.r, spr, !dir)
	return refBimerge(root, spr, dir)
}

// refInorder appends the in-order values.
func refInorder(n *rnode, out *[]int64) {
	if n == nil {
		return
	}
	refInorder(n.l, out)
	*out = append(*out, n.val)
	refInorder(n.r, out)
}

// refChecksum hashes a value sequence.
func refChecksum(vals []int64, spr int64) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v int64) {
		h ^= uint64(v)
		h *= 1099511628211
	}
	for _, v := range vals {
		mix(v)
	}
	mix(spr)
	return h
}

// reference runs the whole benchmark (forward then backward sort) in plain
// Go and returns the final checksum.
func reference(levels int) uint64 {
	next := uint64(99)
	root := refBuild(levels, &next)
	spr := int64(next>>40) + 1
	spr = refBisort(root, spr, false)
	spr = refBisort(root, spr, true)
	var vals []int64
	refInorder(root, &vals)
	return refChecksum(vals, spr)
}
