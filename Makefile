GO ?= go

.PHONY: check build vet fmt test oldenvet

# The full gate CI runs: build, vet, formatting, tests, contract checks.
check: build vet fmt test oldenvet

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

oldenvet:
	$(GO) run ./cmd/oldenvet ./...
