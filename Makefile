GO ?= go

BENCHES = treeadd power tsp mst bisort voronoi em3d barneshut perimeter health

.PHONY: check build vet fmt test oldenvet lint

# The full gate CI runs: build, vet, formatting, tests, contract checks,
# and the mini-C lints over every kernel and example source.
check: build vet fmt test oldenvet lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

oldenvet:
	$(GO) run ./cmd/oldenvet ./...

# oldenc -lint exits 1 only on error-severity diagnostics; the known
# warnings (figure3's dead store, the figure5/barneshut demotions) pass.
lint:
	@for b in $(BENCHES); do \
		$(GO) run ./cmd/oldenc -lint -bench $$b || exit 1; \
	done
	@for f in examples/minic/*.c; do \
		$(GO) run ./cmd/oldenc -lint $$f || exit 1; \
	done
