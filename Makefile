GO ?= go

BENCHES = treeadd power tsp mst bisort voronoi em3d barneshut perimeter health

.PHONY: check build vet fmt static test race fuzz oldenvet lint analyze phases bench report perfgate wallclock profile benchstat serve load servesmoke cluster clustersmoke update-goldens

# Each fuzz target gets a short smoke run in check; raise FUZZTIME for a
# real fuzzing session.
FUZZTIME ?= 10s

# The full gate CI runs: build, vet, formatting, third-party static
# analysis, tests, contract checks, the mini-C lints over every kernel
# and example source, and a fuzz smoke.
check: build vet fmt static test oldenvet lint fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Third-party static analysis at a zero-finding gate. The tools are not
# vendored; when a box doesn't have them the target says so and passes
# (CI installs the pinned versions below and so always runs both).
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

static:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "static: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "static: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# go test runs one -fuzz target per invocation; -run '^$$' skips the
# ordinary tests so only the fuzzing engine runs.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzPackUnpack$$' -fuzztime $(FUZZTIME) ./internal/gaddr
	$(GO) test -run '^$$' -fuzz '^FuzzLexAll$$' -fuzztime $(FUZZTIME) ./internal/lang
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/lang
	$(GO) test -run '^$$' -fuzz '^FuzzEffects$$' -fuzztime $(FUZZTIME) ./internal/analysis/effects

oldenvet:
	$(GO) run ./cmd/oldenvet ./...

# Persistent baselines and the deterministic perf gate. `make bench`
# re-pins the committed BENCH_<name>.json files (do this when a change
# intentionally moves cycle counts, and commit the diff); `make perfgate`
# reproduces the CI gate locally: record a candidate suite, compare it to
# the pinned files at zero tolerance, and render the markdown report.
BASELINE_PROCS ?= 4
PERFGATE_DIR ?= /tmp/olden-perfgate

bench:
	$(GO) run ./cmd/oldenbench -update -maxprocs $(BASELINE_PROCS)

report:
	$(GO) run ./cmd/oldenreport

perfgate:
	$(GO) run ./cmd/oldenbench -record $(PERFGATE_DIR) -maxprocs $(BASELINE_PROCS)
	$(GO) run ./cmd/oldenreport -candidate $(PERFGATE_DIR)

# Simulator wall-clock throughput. Everything above gates on simulated
# cycles (deterministic, zero tolerance); these targets measure how fast
# the simulator executes them — ns per simulated cycle, the host-dependent
# number that bounds served throughput per oldend core. Nothing here is
# pinned or gated.
#
#   make wallclock   measure every benchmark × scheme and render the
#                    report with its ns/sim-cycle section
#   make profile     pprof CPU + allocation profiles over the wall-clock
#                    benchmark suite (go test -bench WallClock)
#   make benchstat   run the suite -benchtime=1x -count=5 and compare
#                    against the committed testdata/wallclock_baseline.txt
WALL_DIR ?= /tmp/olden-wallclock
WALL_SCALE ?= 16
PROFILE_BENCHTIME ?= 3x
BENCHSTAT_VERSION ?= latest

wallclock:
	@mkdir -p $(WALL_DIR)
	$(GO) run ./cmd/oldenbench -wallclock $(WALL_DIR)/WALLCLOCK.json -maxprocs $(BASELINE_PROCS) -scale $(WALL_SCALE)
	$(GO) run ./cmd/oldenreport -wallclock $(WALL_DIR)/WALLCLOCK.json

profile:
	@mkdir -p $(WALL_DIR)
	BENCH_SCALE=$(WALL_SCALE) $(GO) test -run '^$$' -bench 'WallClock' -benchmem \
		-benchtime $(PROFILE_BENCHTIME) \
		-cpuprofile $(WALL_DIR)/cpu.out -memprofile $(WALL_DIR)/mem.out \
		-o $(WALL_DIR)/repro.test .
	@echo "inspect: $(GO) tool pprof $(WALL_DIR)/repro.test $(WALL_DIR)/cpu.out"
	@echo "inspect: $(GO) tool pprof $(WALL_DIR)/repro.test $(WALL_DIR)/mem.out"

benchstat:
	@mkdir -p $(WALL_DIR)
	BENCH_SCALE=64 $(GO) test -run '^$$' -bench 'WallClock' -benchmem \
		-benchtime 1x -count 5 . | tee $(WALL_DIR)/new.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat testdata/wallclock_baseline.txt $(WALL_DIR)/new.txt; \
	else \
		echo "benchstat not installed; skipping comparison (go install golang.org/x/perf/cmd/benchstat@$(BENCHSTAT_VERSION))"; \
	fi

# The serving layer. `make serve` runs oldend in the foreground (ctrl-C
# or SIGTERM drains gracefully); `make load` fires a short closed-loop
# burst at it from another terminal; `make servesmoke` reproduces the CI
# smoke end to end: boot, memoization check, over-admission burst with
# zero-5xx gate, cached-latency SLO, SIGTERM drain under load.
SERVE_ADDR ?= 127.0.0.1:8080
LOAD_DURATION ?= 5s

serve:
	$(GO) run ./cmd/oldend -addr $(SERVE_ADDR)

load:
	$(GO) run ./cmd/oldenload -url http://$(SERVE_ADDR) -c 4 -duration $(LOAD_DURATION) -slo-error-rate 0

servesmoke:
	bash scripts/serve_smoke.sh

# The sharded cluster. `make cluster` boots three oldend replicas behind
# oldenrouter on one box (ctrl-C tears everything down); point clients
# or `oldenload -via-router` at the router — the surface is identical to
# one oldend. `make clustersmoke` reproduces the CI cluster smoke:
# routed cache-hit byte-identity, the cross-replica verify sweep at zero
# mismatches, the three-shard balance gate, shard loss with zero 5xx,
# and tracing through the router.
cluster:
	bash scripts/cluster.sh

clustersmoke:
	bash scripts/cluster_smoke.sh

# One flag, one verb: every golden-pinning test in the tree takes
# `-update` to rewrite its files from the current build (lint goldens,
# trace-digest goldens, the oldenc -analyze/-phases goldens), and the
# committed BENCH_<name>.json baselines are re-pinned by `oldenbench
# -update` (= `make bench`, kept separate because moving cycle counts is
# a reviewed perf decision, not a golden refresh). Run this after an
# intentional output change, then review and commit the diff.
update-goldens:
	$(GO) test ./internal/core -run 'TestLintGolden' -update
	$(GO) test ./internal/bench -run 'TestTraceDigestGoldens' -update
	$(GO) test ./cmd/oldenc -run 'TestAnalyzeGoldens|TestPhasesGoldens' -update

# oldenc -lint exits 1 only on error-severity diagnostics; the known
# warnings (figure3's dead store, the figure5/barneshut demotions) pass.
lint:
	@for b in $(BENCHES); do \
		$(GO) run ./cmd/oldenc -lint -bench $$b || exit 1; \
	done
	@for f in examples/minic/*.c; do \
		$(GO) run ./cmd/oldenc -lint $$f || exit 1; \
	done

# Interprocedural effect/cost analysis over every kernel and example
# source: per-function summaries, static step/alloc bounds, heuristic
# diffs and the cacheability certificate. `-json` output of the same run
# is what CI uploads as the analyze-findings artifact.
analyze:
	@for b in $(BENCHES); do \
		echo "== $$b"; \
		$(GO) run ./cmd/oldenc -analyze -bench $$b || exit 1; \
	done
	@for f in examples/minic/*.c; do \
		echo "== $$f"; \
		$(GO) run ./cmd/oldenc -analyze $$f || exit 1; \
	done

# Phase plans over the same sources: ordered phase chains, per-phase
# footprints, the scheme-invariant prefix and the digest chain the
# server's phase cache keys on. `-json` of the same run is what CI
# uploads as the phase-plans artifact.
phases:
	@for b in $(BENCHES); do \
		echo "== $$b"; \
		$(GO) run ./cmd/oldenc -phases -bench $$b || exit 1; \
	done
	@for f in examples/minic/*.c; do \
		echo "== $$f"; \
		$(GO) run ./cmd/oldenc -phases $$f || exit 1; \
	done
