// Command oldenvet checks Go code against the runtime-API contracts of
// this repository: thread confinement in Spawn closures, rt.Site naming
// hygiene, future touch discipline, the opacity of global heap pointers,
// and consistency of each benchmark's site mechanism tags with the
// heuristic's choice on its mini-C kernel (see internal/analysis).
//
//	oldenvet ./...                      # vet the whole module
//	oldenvet ./internal/bench/...       # vet a subtree
//	oldenvet -json ./...                # machine-readable findings
//	oldenvet internal/analysis/testdata/badsites   # vet a fixture dir
//
// Exits 0 when no findings, 1 when contracts are violated, 2 on usage
// or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	// Directory arguments under a testdata tree are invisible to the go
	// tool; load them directly.  Everything else is a package pattern.
	var patterns, fixtureDirs []string
	for _, a := range args {
		if st, err := os.Stat(a); err == nil && st.IsDir() &&
			strings.Contains(filepath.ToSlash(a), "testdata") {
			fixtureDirs = append(fixtureDirs, a)
			continue
		}
		patterns = append(patterns, a)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fatalf("%v", err)
	}
	var pkgs []*analysis.Package
	if len(patterns) > 0 {
		ps, err := loader.Load(patterns...)
		if err != nil {
			fatalf("%v", err)
		}
		pkgs = append(pkgs, ps...)
	}
	for _, dir := range fixtureDirs {
		p, err := loader.LoadDir(dir)
		if err != nil {
			fatalf("%v", err)
		}
		pkgs = append(pkgs, p)
	}

	findings := analysis.Run(pkgs)
	cwd, _ := os.Getwd()
	for i := range findings {
		if rel, err := filepath.Rel(cwd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "oldenvet: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oldenvet: "+format+"\n", args...)
	os.Exit(2)
}
