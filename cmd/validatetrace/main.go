// Command validatetrace strictly validates a Chrome trace_event JSON
// file (as served by oldend's GET /debug/trace/<id> or written by
// oldenbench/oldensim -chrome) and prints its shape: event counts by
// phase, category and pid, plus any declared drop count.
//
//	validatetrace trace.json
//	curl -s http://127.0.0.1:8080/debug/trace/$ID | validatetrace -min-service 4 -require-sim -
//
// Exit status 0 means the file parses under the strict (unknown fields
// rejected) validator and satisfies the requested shape; 1 means it does
// not. CI uses it to keep the merged service+simulator export loadable
// by real trace viewers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	minService := flag.Int("min-service", 0, "fail unless at least this many events have the service pid (1000)")
	requireSim := flag.Bool("require-sim", false, "fail unless simulator events (non-service pids) are present")
	maxDropped := flag.Int64("max-dropped", -1, "fail if the declared drop count exceeds this (-1 = don't check)")
	flag.Parse()

	var r io.Reader
	switch name := flag.Arg(0); {
	case name == "" || name == "-":
		r = os.Stdin
	default:
		f, err := os.Open(name)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}

	stats, err := trace.ValidateChrome(r)
	if err != nil {
		fatalf("invalid: %v", err)
	}
	fmt.Printf("events=%d metadata=%d dropped=%d\n", stats.Events, stats.Metadata, stats.DroppedEvents)
	for ph, n := range stats.ByPhase {
		fmt.Printf("  ph=%s: %d\n", ph, n)
	}
	for cat, n := range stats.ByCat {
		fmt.Printf("  cat=%s: %d\n", cat, n)
	}
	sim := 0
	for pid, n := range stats.ByPid {
		fmt.Printf("  pid=%d: %d\n", pid, n)
		if pid != 1000 {
			sim += n
		}
	}
	if got := stats.ByPid[1000]; got < *minService {
		fatalf("service events (pid 1000) = %d, want >= %d", got, *minService)
	}
	if *requireSim && sim == 0 {
		fatalf("no simulator events (non-service pids) in trace")
	}
	if *maxDropped >= 0 && stats.DroppedEvents > *maxDropped {
		fatalf("declared dropped events %d > %d", stats.DroppedEvents, *maxDropped)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "validatetrace: "+format+"\n", args...)
	os.Exit(1)
}
