// Command oldenrouter fronts a sharded oldend cluster: it
// consistent-hashes each request's canonical run-config cache key across
// a static replica list, proxies to the owning shard, probes peer caches
// for hot keys, retries connection failures on the next ring owner, and
// — because every replica is deterministic — can duplicate every Kth
// request to a second replica and demand byte-identical answers.
//
//	oldenrouter -addr :8090 \
//	  -replicas http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083 \
//	  -probe-owners 2 -verify-every 16
//
// The surface is deliberately the same as one oldend (POST /run, POST
// /batch, GET /benchmarks, /metrics, /healthz, /readyz, /debug/...), so
// pointing a client — or oldenload — at the router instead of a replica
// changes nothing but capacity. Every response names the shard that
// answered in X-Oldend-Shard and preserves the replica's X-Oldend-*
// cache and trace-digest headers end to end; a W3C traceparent rides
// through the router into the replica, so one trace id resolves the
// whole hop chain.
//
// When a shard is unreachable, requests retry on the next owner in ring
// order (deterministic results make any replica a correct fallback);
// when no owner of a key is reachable the answer is 503 with
// Retry-After. A nonzero oldenrouter_verify_mismatch_total in /metrics
// means two replicas disagreed byte-for-byte on the same configuration —
// a determinism bug, and scripts/cluster_smoke.sh fails on it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"

	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated oldend base URLs the ring shards over (required)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
	probeOwners := flag.Int("probe-owners", 1, "hot-key replication width R: cacheable requests rotate across the key's first R owners, probing their caches first (1 = primary owner only)")
	verifyEvery := flag.Int("verify-every", 0, "duplicate every Kth routed execution to a second replica and require byte-identical answers (0 disables)")
	maxConns := flag.Int("max-conns", 64, "max concurrent connections the router holds open per replica")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
	downCooldown := flag.Duration("down-cooldown", 2*time.Second, "how long a replica stays marked down after a connection failure")
	traceSample := flag.Int("trace-sample", 0, "head-sample every Nth request for span tracing (0 = only requests with a sampled traceparent, negative disables)")
	quiet := flag.Bool("quiet", false, "disable the JSON access log on stderr")
	flag.Parse()

	if *replicas == "" {
		fatalf("-replicas is required (comma-separated oldend base URLs)")
	}
	var list []string
	for _, r := range strings.Split(*replicas, ",") {
		r = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(r), "/"))
		if r != "" {
			list = append(list, r)
		}
	}
	cfg := cluster.Config{
		Replicas:           list,
		VNodes:             *vnodes,
		ProbeOwners:        *probeOwners,
		VerifyEvery:        *verifyEvery,
		MaxConnsPerReplica: *maxConns,
		RetryAfter:         *retryAfter,
		DownCooldown:       *downCooldown,
		SampleEvery:        *traceSample,
	}
	if !*quiet {
		cfg.AccessLog = os.Stderr
	}
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "oldenrouter: listening on %s (replicas=%d vnodes=%d probe-owners=%d verify-every=%d)\n",
		*addr, len(list), *vnodes, *probeOwners, *verifyEvery)

	select {
	case err := <-errc:
		fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	// The router holds no job state of its own — in-flight proxied
	// requests are the only thing to flush, and http.Server.Shutdown
	// waits for exactly those.
	fmt.Fprintln(os.Stderr, "oldenrouter: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		fmt.Fprintf(os.Stderr, "oldenrouter: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "oldenrouter: drained cleanly")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oldenrouter: "+format+"\n", args...)
	os.Exit(1)
}
