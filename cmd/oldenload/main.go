// Command oldenload drives traffic at a running oldend and grades the
// result: throughput, error rate, shed rate and latency percentiles,
// with an SLO gate that fails the process on breach — the repo's
// real-traffic benchmark alongside the simulated-cycle one.
//
// Closed loop (fixed concurrency, each worker fires as fast as the
// server answers):
//
//	oldenload -c 8 -duration 10s
//
// Open loop (fixed arrival rate, regardless of server speed — the shape
// that exercises admission control and shedding):
//
//	oldenload -rps 200 -duration 10s
//
// The request mix is bench:procs:scale triples; unset fields take the
// shared catalog defaults, and names are validated against the same
// enumeration oldend serves at GET /benchmarks:
//
//	oldenload -mix "treeadd:4:64,em3d:2:64" -scheme global -no-cache
//
// A scheme sweep expands every mix entry across a set of coherence
// schemes — the shape that exercises the server's phase cache, which
// shares one build-phase boundary across schemes:
//
//	oldenload -mix "em3d:2:64" -schemes local,global,bilateral -no-cache
//
// With -trace-every N, every Nth request carries a sampled W3C
// traceparent; after the run the K slowest sampled requests (-slowest)
// are fetched back from GET /debug/trace/<id> and reduced to their
// dominant span — "queue_wait dominates at depth 1" distinguishes an
// overloaded queue from a slow kernel without opening a trace viewer:
//
//	oldenload -rps 200 -duration 10s -trace-every 10 -slowest 5
//
// Exit status: 0 when every SLO holds and no request got a 5xx; 1 on any
// breach; 2 on usage errors. 429 shedding is the admission-control
// contract working, not an error — it is reported separately and only
// -max-shed-rate gates it.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"

	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

// sample is one completed request observation.
type sample struct {
	status  int // 0 = transport error
	cache   string
	phase   string
	shard   string // X-Oldend-Shard: which replica answered (cluster mode)
	latency time.Duration
	// traceID is set when the request carried a sampled traceparent, so
	// the server retained its span tree for post-run inspection.
	traceID string
}

// SlowTrace is one slow sampled request's span breakdown, fetched from
// the server's /debug/trace endpoint after the run.
type SlowTrace struct {
	TraceID       string  `json:"trace_id"`
	LatencyMS     float64 `json:"latency_ms"`
	Dominant      string  `json:"dominant"`
	DominantDepth int     `json:"dominant_depth"`
	DominantUS    int64   `json:"dominant_us"`
	ServerDurUS   int64   `json:"server_dur_us"`
}

// Report is the machine-readable load-test result (-out writes it).
type Report struct {
	Mode        string           `json:"mode"` // closed | open
	URL         string           `json:"url"`
	DurationSec float64          `json:"duration_sec"`
	Mix         []string         `json:"mix"`
	Requests    int64            `json:"requests"`
	ByStatus    map[string]int64 `json:"by_status"`
	Transport   int64            `json:"transport_errors"`
	ClientDrops int64            `json:"client_drops,omitempty"` // open loop: inflight cap hit
	Succeeded   int64            `json:"succeeded"`
	Shed        int64            `json:"shed_429"`
	Failed5xx   int64            `json:"failed_5xx"`
	CacheHits   int64            `json:"cache_hits"`
	PhaseHits   int64            `json:"phase_cache_hits"`
	PhaseMisses int64            `json:"phase_cache_misses"`
	Throughput  float64          `json:"throughput_rps"` // successful responses per second
	Latency     LatencyMS        `json:"latency_ms"`     // over successful responses
	// Shards is the per-shard balance view (cluster mode, -via-router):
	// how the router spread this run's traffic, attributed by the
	// X-Oldend-Shard header each response carried.
	Shards     map[string]*ShardStats `json:"shards,omitempty"`
	SlowTraces []SlowTrace            `json:"slow_traces,omitempty"`
	Breaches   []string               `json:"slo_breaches,omitempty"`
}

// ShardStats is one shard's slice of a -via-router run.
type ShardStats struct {
	Requests  int64   `json:"requests"`
	Succeeded int64   `json:"succeeded"`
	CacheHits int64   `json:"cache_hits"`
	HitRate   float64 `json:"hit_rate_pct"`
}

// LatencyMS summarizes successful-response latency in milliseconds.
type LatencyMS struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "oldend base URL")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	concurrency := flag.Int("c", 4, "closed-loop worker count (ignored when -rps > 0)")
	rps := flag.Float64("rps", 0, "open-loop target arrival rate; 0 selects the closed loop")
	maxInflight := flag.Int("max-inflight", 512, "open loop: cap on in-flight requests (beyond it arrivals drop client-side)")
	mixSpec := flag.String("mix", "", "comma-separated bench[:procs[:scale]] request mix (default: first four catalog benchmarks at scale 64)")
	scheme := flag.String("scheme", "local", "coherence scheme for every request")
	schemes := flag.String("schemes", "", "comma-separated scheme sweep: every mix entry expands across all of them (overrides -scheme)")
	mode := flag.String("mode", "heuristic", "mechanism mode for every request")
	noCache := flag.Bool("no-cache", false, "bypass the server's result cache (every request simulates)")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-request server deadline (0 = server default)")
	timeout := flag.Duration("timeout", 2*time.Minute, "HTTP client timeout")
	sloP50 := flag.Float64("slo-p50", 0, "fail if p50 latency exceeds this many ms (0 = off)")
	sloP95 := flag.Float64("slo-p95", 0, "fail if p95 latency exceeds this many ms (0 = off)")
	sloP99 := flag.Float64("slo-p99", 0, "fail if p99 latency exceeds this many ms (0 = off)")
	sloErrRate := flag.Float64("slo-error-rate", 0, "max tolerated (5xx + transport error) fraction")
	maxShedRate := flag.Float64("max-shed-rate", 1, "max tolerated 429 fraction (1 = shedding never fails the gate)")
	minRequests := flag.Int64("min-requests", 1, "fail if fewer requests completed (guards against a dead server passing)")
	out := flag.String("out", "", "write the JSON report to this file")
	traceEvery := flag.Int("trace-every", 0, "send a sampled W3C traceparent on every Nth request so the server retains its span tree (0 = never)")
	slowest := flag.Int("slowest", 3, "after the run, fetch and print span breakdowns for the K slowest sampled requests")
	viaRouter := flag.Bool("via-router", false, "cluster mode: the target is an oldenrouter; report per-shard request balance and hit rates from X-Oldend-Shard")
	expectShards := flag.Int("expect-shards", 0, "cluster mode: fail the gate when fewer distinct shards answered (0 = off)")
	maxShardSpread := flag.Float64("max-shard-spread", 0, "cluster mode: fail the gate when max/min per-shard request counts exceed this ratio (0 = off)")
	flag.Parse()

	schemeList := []string{*scheme}
	if *schemes != "" {
		schemeList = strings.Split(*schemes, ",")
	}
	mix, err := parseMix(*mixSpec, schemeList, *mode, *noCache, *deadlineMS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oldenload: %v\n", err)
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	var (
		mu      sync.Mutex
		samples []sample
		drops   atomic.Int64
		next    atomic.Int64
	)
	recordSample := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}
	fire := func() {
		n := next.Add(1) - 1
		body := mix[int(n)%len(mix)]
		req, err := http.NewRequest(http.MethodPost, *url+"/run", bytes.NewReader(body))
		if err != nil {
			recordSample(sample{status: 0})
			return
		}
		req.Header.Set("Content-Type", "application/json")
		sampled := *traceEvery > 0 && n%int64(*traceEvery) == 0
		if sampled {
			req.Header.Set("traceparent", newTraceparent())
		}
		start := time.Now()
		resp, err := client.Do(req)
		lat := time.Since(start)
		if err != nil {
			recordSample(sample{status: 0, latency: lat})
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		s := sample{
			status:  resp.StatusCode,
			cache:   resp.Header.Get("X-Oldend-Cache"),
			phase:   resp.Header.Get("X-Oldend-Phase-Cache"),
			shard:   resp.Header.Get("X-Oldend-Shard"),
			latency: lat,
		}
		if sampled {
			// The server echoes the propagated id; trust its header so the
			// id we later query is the one it retained.
			s.traceID = resp.Header.Get("X-Oldend-Trace-Id")
		}
		recordSample(s)
	}

	loopMode := "closed"
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	if *rps > 0 {
		loopMode = "open"
		interval := time.Duration(float64(time.Second) / *rps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		sem := make(chan struct{}, *maxInflight)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for time.Now().Before(stop) {
			<-ticker.C
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					fire()
				}()
			default:
				drops.Add(1) // arrival beyond the in-flight cap: client-side drop
			}
		}
	} else {
		if *concurrency < 1 {
			fmt.Fprintln(os.Stderr, "oldenload: -c must be >= 1")
			os.Exit(2)
		}
		for i := 0; i < *concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					fire()
				}
			}()
		}
	}
	wg.Wait()

	rep := summarize(samples, loopMode, *url, *duration, mixNames(mix), drops.Load(), *viaRouter)
	rep.SlowTraces = slowTraces(client, *url, samples, *slowest)
	gate(&rep, *sloP50, *sloP95, *sloP99, *sloErrRate, *maxShedRate, *minRequests)
	gateShards(&rep, *expectShards, *maxShardSpread)

	fmt.Print(formatReport(rep))
	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oldenload: write report: %v\n", err)
			os.Exit(2)
		}
	}
	if len(rep.Breaches) > 0 {
		fmt.Fprintf(os.Stderr, "oldenload: SLO BREACH: %s\n", strings.Join(rep.Breaches, "; "))
		os.Exit(1)
	}
}

// newTraceparent mints a sampled W3C traceparent so the server adopts
// our trace id and retains the request's span tree.
func newTraceparent() string {
	var ctx obs.Context
	binary.BigEndian.PutUint64(ctx.TraceID[:8], rand.Uint64())
	binary.BigEndian.PutUint64(ctx.TraceID[8:], rand.Uint64())
	binary.BigEndian.PutUint64(ctx.SpanID[:], rand.Uint64())
	ctx.Sampled = true
	return ctx.Traceparent()
}

// slowTraces asks the server where the time went in its K slowest
// sampled requests. The /debug/requests ring is already sorted
// slowest-first with each sampled request's dominant span precomputed;
// when the full span tree is still retained (the trace ring is smaller
// than the request ring) it is fetched from /debug/trace for the exact
// self-time numbers. The traceIDs set — requests this load run itself
// sampled — restricts the view to our own traffic. Best-effort
// diagnosis, never part of the gate.
func slowTraces(client *http.Client, baseURL string, samples []sample, k int) []SlowTrace {
	if k <= 0 {
		return nil
	}
	ours := map[string]bool{}
	for _, s := range samples {
		if s.traceID != "" {
			ours[s.traceID] = true
		}
	}
	if len(ours) == 0 {
		return nil
	}
	resp, err := client.Get(baseURL + "/debug/requests")
	if err != nil {
		return nil
	}
	var dbg struct {
		Requests []struct {
			TraceID       string `json:"trace_id"`
			DurUS         int64  `json:"dur_us"`
			Sampled       bool   `json:"sampled"`
			Dominant      string `json:"dominant"`
			DominantDepth int    `json:"dominant_depth"`
		} `json:"requests"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dbg)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	var out []SlowTrace
	for _, r := range dbg.Requests {
		if len(out) == k {
			break
		}
		if !r.Sampled || r.Dominant == "" || !ours[r.TraceID] {
			continue
		}
		st := SlowTrace{
			TraceID:       r.TraceID,
			Dominant:      r.Dominant,
			DominantDepth: r.DominantDepth,
			ServerDurUS:   r.DurUS,
			LatencyMS:     float64(r.DurUS) / 1000,
		}
		if tr, err := client.Get(baseURL + "/debug/trace/" + r.TraceID + "?format=tree"); err == nil {
			var tree struct {
				DominantUS int64 `json:"dominant_us"`
			}
			if tr.StatusCode == http.StatusOK && json.NewDecoder(tr.Body).Decode(&tree) == nil {
				st.DominantUS = tree.DominantUS
			}
			io.Copy(io.Discard, tr.Body)
			tr.Body.Close()
		}
		out = append(out, st)
	}
	return out
}

// parseMix compiles the mix spec into ready-to-send request bodies — one
// per (mix entry, scheme) pair — validating every field against the
// shared catalog so this binary can never ask for a configuration oldend
// does not advertise.
func parseMix(spec string, schemes []string, mode string, noCache bool, deadlineMS int64) ([][]byte, error) {
	catalog := bench.Catalog()
	byName := map[string]bench.CatalogEntry{}
	for _, e := range catalog {
		byName[e.Name] = e
	}
	if spec == "" {
		var parts []string
		for _, e := range catalog {
			parts = append(parts, fmt.Sprintf("%s:%d:64", e.Name, e.DefaultProcs))
			if len(parts) == 4 {
				break
			}
		}
		spec = strings.Join(parts, ",")
	}
	var mix [][]byte
	for _, item := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(item), ":")
		if len(fields) > 3 {
			return nil, fmt.Errorf("bad mix entry %q (want bench[:procs[:scale]])", item)
		}
		e, ok := byName[fields[0]]
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q in mix (oldenbench -list enumerates them)", fields[0])
		}
		procs, scale := e.DefaultProcs, e.DefaultScale
		var err error
		if len(fields) > 1 {
			if procs, err = strconv.Atoi(fields[1]); err != nil || procs < 1 || procs > e.MaxProcs {
				return nil, fmt.Errorf("bad procs in mix entry %q", item)
			}
		}
		if len(fields) > 2 {
			if scale, err = strconv.Atoi(fields[2]); err != nil || scale < 1 {
				return nil, fmt.Errorf("bad scale in mix entry %q", item)
			}
		}
		modeOK := false
		for _, m := range e.Modes {
			modeOK = modeOK || m == mode
		}
		if !modeOK {
			return nil, fmt.Errorf("mode %q not in catalog (%s)", mode, strings.Join(e.Modes, ", "))
		}
		for _, scheme := range schemes {
			scheme = strings.TrimSpace(scheme)
			schemeOK := false
			for _, s := range e.Schemes {
				schemeOK = schemeOK || s == scheme
			}
			if !schemeOK {
				return nil, fmt.Errorf("scheme %q not in catalog (%s)", scheme, strings.Join(e.Schemes, ", "))
			}
			body, err := json.Marshal(map[string]any{
				"benchmark":   e.Name,
				"procs":       procs,
				"scale":       scale,
				"scheme":      scheme,
				"mode":        mode,
				"no_cache":    noCache,
				"deadline_ms": deadlineMS,
			})
			if err != nil {
				return nil, err
			}
			mix = append(mix, body)
		}
	}
	return mix, nil
}

func mixNames(mix [][]byte) []string {
	var names []string
	for _, b := range mix {
		var m struct {
			Benchmark string `json:"benchmark"`
			Procs     int    `json:"procs"`
			Scale     int    `json:"scale"`
			Scheme    string `json:"scheme"`
		}
		_ = json.Unmarshal(b, &m)
		names = append(names, fmt.Sprintf("%s:%d:%d:%s", m.Benchmark, m.Procs, m.Scale, m.Scheme))
	}
	return names
}

func summarize(samples []sample, mode, url string, dur time.Duration, mix []string, drops int64, viaRouter bool) Report {
	rep := Report{
		Mode:        mode,
		URL:         url,
		DurationSec: dur.Seconds(),
		Mix:         mix,
		ByStatus:    map[string]int64{},
		ClientDrops: drops,
	}
	if viaRouter {
		rep.Shards = map[string]*ShardStats{}
	}
	var okLats []time.Duration
	for _, s := range samples {
		rep.Requests++
		if s.status == 0 {
			rep.Transport++
			continue
		}
		rep.ByStatus[strconv.Itoa(s.status)]++
		var sh *ShardStats
		if rep.Shards != nil && s.shard != "" {
			sh = rep.Shards[s.shard]
			if sh == nil {
				sh = &ShardStats{}
				rep.Shards[s.shard] = sh
			}
			sh.Requests++
		}
		switch {
		case s.status == http.StatusOK:
			rep.Succeeded++
			okLats = append(okLats, s.latency)
			if sh != nil {
				sh.Succeeded++
			}
			if s.cache == "hit" {
				rep.CacheHits++
				if sh != nil {
					sh.CacheHits++
				}
			}
			switch s.phase {
			case "hit":
				rep.PhaseHits++
			case "miss":
				rep.PhaseMisses++
			}
		case s.status == http.StatusTooManyRequests:
			rep.Shed++
		case s.status >= 500:
			// Strict by design: drain refusals (503) and expired
			// deadlines (504) count too, so a gated load run must
			// target a ready server and use sane deadlines.
			rep.Failed5xx++
		}
	}
	if dur > 0 {
		rep.Throughput = float64(rep.Succeeded) / dur.Seconds()
	}
	for _, sh := range rep.Shards {
		sh.HitRate = pct(sh.CacheHits, sh.Succeeded)
	}
	if len(okLats) > 0 {
		sort.Slice(okLats, func(i, j int) bool { return okLats[i] < okLats[j] })
		var sum time.Duration
		for _, l := range okLats {
			sum += l
		}
		rep.Latency = LatencyMS{
			P50:  ms(percentile(okLats, 50)),
			P95:  ms(percentile(okLats, 95)),
			P99:  ms(percentile(okLats, 99)),
			Mean: ms(sum / time.Duration(len(okLats))),
			Max:  ms(okLats[len(okLats)-1]),
		}
	}
	return rep
}

// percentile returns the q-th percentile of sorted latencies by the
// nearest-rank method.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// gate appends one breach string per violated SLO. A 5xx is always a
// breach: the admission-control contract says overload answers 429,
// never a server error.
func gate(rep *Report, p50, p95, p99, errRate, shedRate float64, minRequests int64) {
	if rep.Requests < minRequests {
		rep.Breaches = append(rep.Breaches,
			fmt.Sprintf("completed %d requests, need >= %d", rep.Requests, minRequests))
	}
	if rep.Failed5xx > 0 {
		rep.Breaches = append(rep.Breaches, fmt.Sprintf("%d responses were 5xx", rep.Failed5xx))
	}
	if rep.Requests > 0 {
		er := float64(rep.Failed5xx+rep.Transport) / float64(rep.Requests)
		if er > errRate {
			rep.Breaches = append(rep.Breaches,
				fmt.Sprintf("error rate %.4f > %.4f", er, errRate))
		}
		sr := float64(rep.Shed) / float64(rep.Requests)
		if sr > shedRate {
			rep.Breaches = append(rep.Breaches,
				fmt.Sprintf("shed rate %.4f > %.4f", sr, shedRate))
		}
	}
	check := func(name string, got, slo float64) {
		if slo > 0 && got > slo {
			rep.Breaches = append(rep.Breaches, fmt.Sprintf("%s %.1fms > %.1fms", name, got, slo))
		}
	}
	check("p50", rep.Latency.P50, p50)
	check("p95", rep.Latency.P95, p95)
	check("p99", rep.Latency.P99, p99)
}

// gateShards appends cluster-mode breaches: fewer shards answered than
// the cluster is supposed to have (a replica silently absorbed nothing —
// dead ring entry or mis-hashing router), or per-shard request counts
// spread wider than the allowed max/min ratio (the consistent-hash
// balance contract).
func gateShards(rep *Report, expectShards int, maxSpread float64) {
	if expectShards > 0 && len(rep.Shards) < expectShards {
		rep.Breaches = append(rep.Breaches,
			fmt.Sprintf("%d distinct shards answered, need >= %d", len(rep.Shards), expectShards))
	}
	if maxSpread > 0 && len(rep.Shards) > 0 {
		minReq, maxReq := int64(math.MaxInt64), int64(0)
		for _, sh := range rep.Shards {
			if sh.Requests < minReq {
				minReq = sh.Requests
			}
			if sh.Requests > maxReq {
				maxReq = sh.Requests
			}
		}
		if minReq == 0 {
			rep.Breaches = append(rep.Breaches, "a shard answered zero requests (spread unbounded)")
		} else if spread := float64(maxReq) / float64(minReq); spread > maxSpread {
			rep.Breaches = append(rep.Breaches,
				fmt.Sprintf("shard load spread %.2f (max %d / min %d requests) > %.2f",
					spread, maxReq, minReq, maxSpread))
		}
	}
}

func formatReport(r Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "oldenload: %s loop against %s for %.1fs\n", r.Mode, r.URL, r.DurationSec)
	fmt.Fprintf(&sb, "mix: %s\n", strings.Join(r.Mix, ", "))
	fmt.Fprintf(&sb, "requests: %d  ok: %d  shed(429): %d  5xx: %d  transport: %d",
		r.Requests, r.Succeeded, r.Shed, r.Failed5xx, r.Transport)
	if r.ClientDrops > 0 {
		fmt.Fprintf(&sb, "  client-drops: %d", r.ClientDrops)
	}
	sb.WriteByte('\n')
	var codes []string
	for c := range r.ByStatus {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&sb, "  status %s: %d\n", c, r.ByStatus[c])
	}
	fmt.Fprintf(&sb, "cache hits: %d (%.1f%% of ok)\n", r.CacheHits, pct(r.CacheHits, r.Succeeded))
	if r.PhaseHits+r.PhaseMisses > 0 {
		fmt.Fprintf(&sb, "phase cache: %d hits / %d builds (%.1f%% hit rate)\n",
			r.PhaseHits, r.PhaseMisses, pct(r.PhaseHits, r.PhaseHits+r.PhaseMisses))
	}
	fmt.Fprintf(&sb, "throughput: %.1f ok/s\n", r.Throughput)
	fmt.Fprintf(&sb, "latency ms: p50=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Mean, r.Latency.Max)
	if len(r.Shards) > 0 {
		names := make([]string, 0, len(r.Shards))
		for n := range r.Shards {
			names = append(names, n)
		}
		sort.Strings(names)
		sb.WriteString("per-shard balance:\n")
		for _, n := range names {
			sh := r.Shards[n]
			fmt.Fprintf(&sb, "  %-12s requests=%d ok=%d cache-hits=%d (%.1f%%)\n",
				n, sh.Requests, sh.Succeeded, sh.CacheHits, sh.HitRate)
		}
	}
	if len(r.SlowTraces) > 0 {
		sb.WriteString("slowest sampled requests:\n")
		for i, st := range r.SlowTraces {
			fmt.Fprintf(&sb, "  %d. %s %.2fms — %s dominates at depth %d (%dµs self of %dµs server time)\n",
				i+1, st.TraceID, st.LatencyMS, st.Dominant, st.DominantDepth, st.DominantUS, st.ServerDurUS)
		}
	}
	if len(r.Breaches) == 0 {
		sb.WriteString("SLO: ok\n")
	} else {
		fmt.Fprintf(&sb, "SLO: BREACHED — %s\n", strings.Join(r.Breaches, "; "))
	}
	return sb.String()
}

func pct(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
