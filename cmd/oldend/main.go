// Command oldend is the Olden execution service: a long-running HTTP
// server that runs benchmark simulations on a bounded worker pool with
// admission control, deterministic result memoization, Prometheus
// metrics and graceful drain.
//
//	oldend -addr :8080 -workers 4 -queue 64
//
// Endpoints:
//
//	POST /run             {"benchmark":"treeadd","procs":4,"scheme":"local"}
//	POST /batch           {"runs":[...]} — a config set, deduped against both caches
//	GET  /benchmarks      machine-readable catalog (same bytes as oldenbench -list)
//	GET  /metrics         Prometheus text exposition
//	GET  /debug/requests  recent + in-flight requests, slowest first
//	GET  /debug/trace/ID  one sampled request's merged Chrome trace (?format=tree for JSON)
//	GET  /healthz         liveness
//	GET  /readyz          readiness (fails during drain)
//
// Every response carries X-Oldend-Trace-Id; requests arriving with a
// W3C traceparent keep their upstream trace id, and a sampled flag (or
// -trace-sample N head sampling) retains the full span tree — admission,
// queue wait, cache probes, per-phase execution — merged with the run's
// simulated cache events in one Chrome trace file.
//
// A full queue sheds load with 429 + Retry-After; SIGINT/SIGTERM begins
// graceful drain: readiness fails, in-flight and queued runs complete,
// then the process exits. Repeating a run configuration returns the
// memoized RunRecord byte-identically — sound because the simulator is
// deterministic (PR 3's digest goldens). Below the result cache sits the
// phase cache: build-phase boundaries whose static phase plan certifies
// scheme-invariance are memoized once and restored for every scheme and
// mode (the X-Oldend-Phase-Cache header reports hit/miss/none).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"

	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "worker pool size (concurrent simulations)")
	queue := flag.Int("queue", 64, "admission queue depth; beyond this requests shed with 429")
	cacheEntries := flag.Int("cache", 256, "result cache capacity in entries (negative disables memoization)")
	phaseEntries := flag.Int("phase-cache", 64, "phase cache capacity: memoized build-phase boundaries shared across schemes (negative disables)")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 5*time.Minute, "upper bound on requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long SIGTERM waits for in-flight runs")
	quiet := flag.Bool("quiet", false, "disable the JSON access log on stderr")
	traceSample := flag.Int("trace-sample", 0, "head-sample every Nth request for span tracing (1 = all, 0 = only requests with a sampled traceparent, negative disables)")
	traceRequests := flag.Int("trace-requests", 256, "finished-request ring size behind /debug/requests")
	traceCapacity := flag.Int("trace-capacity", 0, "per-sampled-request simulation event ring (0 = simulator default; overflow is counted, never silent)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	shardName := flag.String("shard", "", "shard name this replica advertises in X-Oldend-Shard when serving behind oldenrouter")
	flag.Parse()

	cfg := server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheEntries:      *cacheEntries,
		PhaseCacheEntries: *phaseEntries,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDeadline,
		SampleEvery:       *traceSample,
		DebugRequests:     *traceRequests,
		TraceCapacity:     *traceCapacity,
		EnablePprof:       *pprofOn,
		ShardName:         *shardName,
	}
	if !*quiet {
		cfg.AccessLog = server.NewAccessLogger(os.Stderr)
	}
	s := server.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "oldend: listening on %s (workers=%d queue=%d cache=%d phase-cache=%d)\n",
		*addr, *workers, *queue, *cacheEntries, *phaseEntries)

	select {
	case err := <-errc:
		fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	// Drain order: fail readiness + refuse new runs immediately, finish
	// admitted work, then close the listener so in-flight responses
	// flush before the process exits.
	fmt.Fprintln(os.Stderr, "oldend: drain started (readiness now failing)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "oldend: drain incomplete: %v\n", err)
		httpSrv.Close()
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "oldend: http shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "oldend: drained cleanly")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oldend: "+format+"\n", args...)
	os.Exit(1)
}
