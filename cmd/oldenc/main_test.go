package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/phases"
	"repro/internal/bench"
)

// The repo-wide convention: every golden-pinning test package takes
// -update to regenerate its goldens (see also internal/core and
// internal/bench), surfaced as `make update-goldens`.
var update = flag.Bool("update", false,
	"rewrite testdata/*.golden from the current tool output")

// runOldenc drives the command through its testable seam.
func runOldenc(t *testing.T, stdin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

// checkGolden compares tool output against testdata/<file>, rewriting it
// under -update.
func checkGolden(t *testing.T, file, got string) {
	t.Helper()
	golden := filepath.Join("testdata", file)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("output changed for %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestAnalyzeGoldens pins the -analyze report over the paper figures and
// the hostile fixture. The output is part of the tool's contract — the
// effect lines feed certificate digests — so changes must be reviewed and
// regenerated deliberately:
//
//	go test ./cmd/oldenc -run TestAnalyzeGoldens -update
func TestAnalyzeGoldens(t *testing.T) {
	for _, name := range []string{"figure3", "figure4", "figure5", "hostile"} {
		t.Run(name, func(t *testing.T) {
			src := filepath.Join("..", "..", "examples", "minic", name+".c")
			stdout, stderr, code := runOldenc(t, "", "-analyze", src)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr)
			}
			checkGolden(t, "analyze_"+name+".golden", stdout)
		})
	}
}

// TestPhasesGoldens pins the -phases plan over the same fixtures: the
// slicing, per-phase footprints, invariance verdicts and the digest
// chain are all part of the PhasePlan certificate the server's phase
// cache keys on, so any drift must be deliberate.
func TestPhasesGoldens(t *testing.T) {
	for _, name := range []string{"figure3", "figure4", "figure5", "hostile"} {
		t.Run(name, func(t *testing.T) {
			src := filepath.Join("..", "..", "examples", "minic", name+".c")
			stdout, stderr, code := runOldenc(t, "", "-phases", src)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr)
			}
			checkGolden(t, "phases_"+name+".golden", stdout)
		})
	}
}

// TestHostileFixtureRejected pins the acceptance contract on the hostile
// fixture: unbounded loops surface as ⊤ bounds and the certificate is
// refused with machine-readable reasons.
func TestHostileFixtureRejected(t *testing.T) {
	src := filepath.Join("..", "..", "examples", "minic", "hostile.c")
	stdout, _, code := runOldenc(t, "", "-analyze", src)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"steps<=⊤",
		"allocs<=⊤",
		"certificate: not cacheable:",
		"aliased-write:node.next via m",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
}

// TestLintExitCodes pins the -lint exit contract: 0 for clean programs,
// 0 when only warnings fire, 1 as soon as any error-severity diagnostic
// does.
func TestLintExitCodes(t *testing.T) {
	const clean = `
struct s { int v; struct s *n __affinity(90); };
void f(struct s *p) {
  while (p) {
    p = p->n;
  }
}
`
	const warnOnly = `
struct s { int v; struct s *n __affinity(90); };
void f(struct s *p) { return; }
`
	const hasError = `
struct s { int v; struct s *n __affinity(120); };
void f(struct s *p) {
  while (p) {
    p = p->n;
  }
}
`
	cases := []struct {
		name string
		src  string
		code int
	}{
		{"clean", clean, 0},
		{"warnings-only", warnOnly, 0},
		{"errors", hasError, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runOldenc(t, tc.src, "-lint", "-")
			if code != tc.code {
				t.Errorf("exit = %d, want %d\nstdout: %s\nstderr: %s",
					code, tc.code, stdout, stderr)
			}
		})
	}
}

// TestLintJSONSeverity checks that -lint -json carries the severity of
// each diagnostic.
func TestLintJSONSeverity(t *testing.T) {
	const src = `
struct s { int v; struct s *n __affinity(120); };
void f(struct s *p) {
  while (p) {
    p = p->n;
  }
}
`
	stdout, stderr, code := runOldenc(t, src, "-lint", "-json", "-")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	sawError := false
	for _, f := range findings {
		if f.Severity != "warning" && f.Severity != "error" {
			t.Errorf("finding %v has severity %q", f, f.Severity)
		}
		if f.Severity == "error" {
			sawError = true
		}
	}
	if !sawError {
		t.Errorf("no error-severity finding in %s", stdout)
	}
}

// TestAnalyzeJSONShape checks the -analyze -json findings: the oldenvet
// shape, sorted by position, with the certificate refusal machine-
// readable.
func TestAnalyzeJSONShape(t *testing.T) {
	src := filepath.Join("..", "..", "examples", "minic", "hostile.c")
	stdout, stderr, code := runOldenc(t, "", "-analyze", "-json", src)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	checks := map[string]bool{}
	for i, f := range findings {
		checks[f.Check] = true
		if f.File == "" || f.Line == 0 {
			t.Errorf("finding %d lacks position: %+v", i, f)
		}
		if i > 0 {
			a, b := findings[i-1], findings[i]
			if a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col) {
				t.Errorf("findings out of order at %d: %+v then %+v", i, a, b)
			}
		}
	}
	for _, want := range []string{
		"effects/summary", "effects/bound", "effects/diff", "effects/certificate",
	} {
		if !checks[want] {
			t.Errorf("no %s finding in %s", want, stdout)
		}
	}
	for _, f := range findings {
		if f.Check == "effects/certificate" {
			if !strings.Contains(f.Message, "not cacheable:") ||
				!strings.Contains(f.Message, "mixed-mechanisms") {
				t.Errorf("certificate finding not machine-readable: %q", f.Message)
			}
		}
	}
}

// TestAnalyzeBenchKernels smoke-runs -analyze over every pinned kernel:
// the analysis must terminate and produce a certificate line for each.
func TestAnalyzeBenchKernels(t *testing.T) {
	for name := range kernels {
		stdout, stderr, code := runOldenc(t, "", "-analyze", "-bench", name)
		if code != 0 {
			t.Errorf("%s: exit %d, stderr: %s", name, code, stderr)
			continue
		}
		if !strings.Contains(stdout, "certificate: ") {
			t.Errorf("%s: no certificate in output:\n%s", name, stdout)
		}
	}
}

// TestPhasesJSON decodes the -phases -json certificate for the hostile
// fixture: refused, machine-readable reasons, and a digest on every
// phase so downstream tooling can key on the chain.
func TestPhasesJSON(t *testing.T) {
	src := filepath.Join("..", "..", "examples", "minic", "hostile.c")
	stdout, stderr, code := runOldenc(t, "", "-phases", "-json", src)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var plan phases.Plan
	if err := json.Unmarshal([]byte(stdout), &plan); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if !plan.Refused || len(plan.Reasons) == 0 {
		t.Fatalf("hostile fixture must be refused with reasons: %+v", plan)
	}
	for _, r := range plan.Reasons {
		if !strings.Contains(r, ":") && r != "no-entry-function" {
			t.Errorf("refusal reason %q is not machine-readable", r)
		}
	}
	for i, ph := range plan.Phases {
		if ph.Digest == "" || ph.Chain == "" {
			t.Errorf("phase %d lacks digest/chain: %+v", i, ph)
		}
	}
}

// TestPhasesBenchKernels smoke-runs -phases over every pinned kernel and
// checks the phased benchmarks expose the synthetic build phase.
func TestPhasesBenchKernels(t *testing.T) {
	for name := range kernels {
		stdout, stderr, code := runOldenc(t, "", "-phases", "-json", "-bench", name)
		if code != 0 {
			t.Errorf("%s: exit %d, stderr: %s", name, code, stderr)
			continue
		}
		var plan phases.Plan
		if err := json.Unmarshal([]byte(stdout), &plan); err != nil {
			t.Errorf("%s: bad JSON: %v", name, err)
			continue
		}
		info, ok := bench.Get(name)
		if !ok {
			t.Errorf("%s: not registered", name)
			continue
		}
		hasBuild := len(plan.Phases) > 0 && plan.Phases[0].Kind == phases.KindBuild
		if want := info.Phased != nil; hasBuild != want {
			t.Errorf("%s: build phase present=%t, want %t", name, hasBuild, want)
		}
	}
}

// TestModeExclusivity pins the flag contract.
func TestModeExclusivity(t *testing.T) {
	if _, _, code := runOldenc(t, "", "-lint", "-phases", "-bench", "treeadd"); code != 1 {
		t.Errorf("-lint -phases: exit %d, want 1", code)
	}
	if _, _, code := runOldenc(t, "", "-json", "-bench", "treeadd"); code != 1 {
		t.Errorf("bare -json: exit %d, want 1", code)
	}
}
