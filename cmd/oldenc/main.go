// Command oldenc runs the Olden compile-time analysis on a mini-C program:
// update matrices, induction variables, and the two-pass mechanism
// selection heuristic (paper §4).
//
//	oldenc prog.c             # analyze a source file
//	oldenc -                  # analyze standard input
//	oldenc -bench treeadd     # analyze a benchmark's kernel
//	oldenc -threshold 80 prog.c
//	oldenc -lint prog.c       # lint diagnostics (exit 1 on errors)
//	oldenc -lint -json prog.c # diagnostics in the oldenvet -json shape
//	oldenc -analyze prog.c    # effect summaries, cost bounds, certificate
//	oldenc -analyze -json prog.c
//	oldenc -phases prog.c     # phase plan: slicing, footprints, invariance
//	oldenc -phases -json -bench em3d
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/effects"
	"repro/internal/analysis/phases"
	"repro/internal/bench"
	"repro/internal/bench/barneshut"
	"repro/internal/bench/bisort"
	"repro/internal/bench/em3d"
	"repro/internal/bench/health"
	"repro/internal/bench/mst"
	"repro/internal/bench/perimeter"
	"repro/internal/bench/power"
	"repro/internal/bench/treeadd"
	"repro/internal/bench/tsp"
	"repro/internal/bench/voronoi"
	"repro/olden"
)

var kernels = map[string]string{
	"treeadd":   treeadd.KernelSource,
	"power":     power.KernelSource,
	"tsp":       tsp.KernelSource,
	"mst":       mst.KernelSource,
	"bisort":    bisort.KernelSource,
	"voronoi":   voronoi.KernelSource,
	"em3d":      em3d.KernelSource,
	"barneshut": barneshut.KernelSource,
	"perimeter": perimeter.KernelSource,
	"health":    health.KernelSource,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: it parses args, reads
// the program, and writes the chosen report, returning the exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("oldenc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchName := fs.String("bench", "", "analyze a benchmark kernel instead of a file")
	threshold := fs.Int("threshold", 90, "migration threshold in percent")
	defAff := fs.Int("affinity", 70, "default path-affinity in percent")
	sites := fs.Bool("sites", false, "also list every dereference site with its mechanism")
	interproc := fs.Bool("interprocedural", false, "enable the return-value path extension (the paper's future work)")
	lint := fs.Bool("lint", false, "emit lint diagnostics instead of the analysis report (exit 1 on errors)")
	analyzeF := fs.Bool("analyze", false, "emit interprocedural effect summaries, cost bounds and the cacheability certificate")
	phasesF := fs.Bool("phases", false, "emit the phase plan: slicing, footprints and scheme-invariance verdicts")
	jsonOut := fs.Bool("json", false, "with -lint, -analyze or -phases, emit the machine-readable form")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, fargs ...any) int {
		fmt.Fprintf(stderr, "oldenc: "+format+"\n", fargs...)
		return 1
	}
	modes := 0
	for _, on := range []bool{*lint, *analyzeF, *phasesF} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fail("-lint, -analyze and -phases are mutually exclusive")
	}
	if *jsonOut && modes == 0 {
		return fail("-json requires -lint, -analyze or -phases")
	}

	var src string
	file := ""
	includeBuild := false
	switch {
	case *benchName != "":
		s, ok := kernels[*benchName]
		if !ok {
			return fail("unknown benchmark %q", *benchName)
		}
		src = s
		file = "bench:" + *benchName
		// A benchmark kernel runs under the harness, whose build happens
		// before virtual time starts; phased benchmarks expose it as a
		// synthetic invariant phase.
		if info, registered := bench.Get(*benchName); registered {
			includeBuild = info.Phased != nil
		}
	case fs.NArg() == 1 && fs.Arg(0) == "-":
		data, err := io.ReadAll(stdin)
		if err != nil {
			return fail("reading stdin: %v", err)
		}
		src = string(data)
		file = "<stdin>"
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fail("%v", err)
		}
		src = string(data)
		file = fs.Arg(0)
	default:
		fmt.Fprintln(stderr, "usage: oldenc [-threshold N] [-affinity N] [-lint | -analyze | -phases] [-json] <file.c | - | -bench name>")
		return 2
	}

	params := olden.Params{
		Threshold:              float64(*threshold) / 100,
		DefaultAffinity:        float64(*defAff) / 100,
		InterproceduralReturns: *interproc,
	}

	if *analyzeF {
		res, err := effects.AnalyzeSource(src, params)
		if err != nil {
			return fail("%v", err)
		}
		return writeAnalysis(stdout, stderr, res, file, *jsonOut)
	}

	if *phasesF {
		res, err := effects.AnalyzeSource(src, params)
		if err != nil {
			return fail("%v", err)
		}
		plan := phases.Compute(res, phases.Options{IncludeBuild: includeBuild})
		return writePhases(stdout, stderr, plan, *jsonOut)
	}

	report, err := olden.AnalyzeWith(src, params)
	if err != nil {
		return fail("%v", err)
	}
	if *lint {
		return writeLint(stdout, stderr, report.Lint(), file, *jsonOut)
	}
	fmt.Fprint(stdout, report)
	if *sites {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, report.SitesString())
	}
	if report.UsesMigrationOnly() {
		fmt.Fprintln(stdout, "overall: migration only (an \"M\" program)")
	} else {
		fmt.Fprintln(stdout, "overall: migration + caching (an \"M+C\" program)")
	}
	return 0
}

// writeLint prints the diagnostics; exit 1 when any is an error.
func writeLint(stdout, stderr io.Writer, diags []olden.Diag, file string, jsonOut bool) int {
	if jsonOut {
		findings := make([]analysis.Finding, 0, len(diags))
		for _, d := range diags {
			sev := "warning"
			if d.Sev == olden.DiagError {
				sev = "error"
			}
			findings = append(findings, analysis.Finding{
				Check:    d.Code,
				File:     file,
				Line:     d.Pos.Line,
				Col:      d.Pos.Col,
				Message:  d.Msg,
				Severity: sev,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "oldenc: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	for _, d := range diags {
		if d.Sev == olden.DiagError {
			return 1
		}
	}
	return 0
}

// writeAnalysis prints the effects analysis: per function the effect
// summary and cost bounds, then the heuristic differential and the
// cacheability certificate. With jsonOut it emits the findings slice in
// the oldenvet shape instead.
func writeAnalysis(stdout, stderr io.Writer, res *effects.Result, file string, jsonOut bool) int {
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Findings(file)); err != nil {
			fmt.Fprintf(stderr, "oldenc: %v\n", err)
			return 1
		}
		return 0
	}
	for _, s := range res.Summaries {
		fmt.Fprintf(stdout, "func %s(%s):\n", s.Name, joinComma(s.Params))
		fmt.Fprintf(stdout, "  effects: %s\n", s.EffectsLine())
		fmt.Fprintf(stdout, "  bounds:  %s\n", s.BoundsLine())
	}
	for _, d := range res.Diffs {
		fmt.Fprintf(stdout, "diff: %s:%d:%d: %s: loop %s: %s %s->%s (%s)\n",
			file, d.Pos.Line, d.Pos.Col, d.Fn, d.Loop, d.Var, d.Old, d.New, d.Reason)
	}
	cert := res.Certificate()
	if cert.Cacheable {
		kind := "migrate-only"
		if cert.CacheOnly {
			kind = "cache-only"
		}
		fmt.Fprintf(stdout, "certificate: cacheable (%s) digest=%s\n", kind, cert.Digest)
	} else {
		fmt.Fprintf(stdout, "certificate: not cacheable: %s digest=%s\n",
			joinComma(cert.Reasons), cert.Digest)
	}
	return 0
}

// writePhases prints the phase plan; with jsonOut it emits the PhasePlan
// certificate itself — the machine-readable artifact CI uploads.
func writePhases(stdout, stderr io.Writer, plan *phases.Plan, jsonOut bool) int {
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fmt.Fprintf(stderr, "oldenc: %v\n", err)
			return 1
		}
		return 0
	}
	fmt.Fprint(stdout, plan)
	return 0
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}
