// Command oldenc runs the Olden compile-time analysis on a mini-C program:
// update matrices, induction variables, and the two-pass mechanism
// selection heuristic (paper §4).
//
//	oldenc prog.c             # analyze a source file
//	oldenc -                  # analyze standard input
//	oldenc -bench treeadd     # analyze a benchmark's kernel
//	oldenc -threshold 80 prog.c
//	oldenc -lint prog.c       # lint diagnostics (exit 1 on errors)
//	oldenc -lint -json prog.c # diagnostics in the oldenvet -json shape
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/bench/barneshut"
	"repro/internal/bench/bisort"
	"repro/internal/bench/em3d"
	"repro/internal/bench/health"
	"repro/internal/bench/mst"
	"repro/internal/bench/perimeter"
	"repro/internal/bench/power"
	"repro/internal/bench/treeadd"
	"repro/internal/bench/tsp"
	"repro/internal/bench/voronoi"
	"repro/olden"
)

var kernels = map[string]string{
	"treeadd":   treeadd.KernelSource,
	"power":     power.KernelSource,
	"tsp":       tsp.KernelSource,
	"mst":       mst.KernelSource,
	"bisort":    bisort.KernelSource,
	"voronoi":   voronoi.KernelSource,
	"em3d":      em3d.KernelSource,
	"barneshut": barneshut.KernelSource,
	"perimeter": perimeter.KernelSource,
	"health":    health.KernelSource,
}

func main() {
	benchName := flag.String("bench", "", "analyze a benchmark kernel instead of a file")
	threshold := flag.Int("threshold", 90, "migration threshold in percent")
	defAff := flag.Int("affinity", 70, "default path-affinity in percent")
	sites := flag.Bool("sites", false, "also list every dereference site with its mechanism")
	interproc := flag.Bool("interprocedural", false, "enable the return-value path extension (the paper's future work)")
	lint := flag.Bool("lint", false, "emit lint diagnostics instead of the analysis report (exit 1 on errors)")
	jsonOut := flag.Bool("json", false, "with -lint, emit diagnostics as JSON (the oldenvet -json finding shape)")
	flag.Parse()
	if *jsonOut && !*lint {
		fatalf("-json requires -lint")
	}

	var src string
	file := ""
	switch {
	case *benchName != "":
		s, ok := kernels[*benchName]
		if !ok {
			fatalf("unknown benchmark %q", *benchName)
		}
		src = s
		file = "bench:" + *benchName
	case flag.NArg() == 1 && flag.Arg(0) == "-":
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatalf("reading stdin: %v", err)
		}
		src = string(data)
		file = "<stdin>"
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		src = string(data)
		file = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: oldenc [-threshold N] [-affinity N] <file.c | - | -bench name>")
		os.Exit(2)
	}

	params := olden.Params{
		Threshold:              float64(*threshold) / 100,
		DefaultAffinity:        float64(*defAff) / 100,
		InterproceduralReturns: *interproc,
	}
	report, err := olden.AnalyzeWith(src, params)
	if err != nil {
		fatalf("%v", err)
	}
	if *lint {
		diags := report.Lint()
		if *jsonOut {
			findings := make([]analysis.Finding, 0, len(diags))
			for _, d := range diags {
				findings = append(findings, analysis.Finding{
					Check:   d.Code,
					File:    file,
					Line:    d.Pos.Line,
					Col:     d.Pos.Col,
					Message: d.Msg,
				})
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(findings); err != nil {
				fatalf("%v", err)
			}
		} else {
			for _, d := range diags {
				fmt.Println(d)
			}
		}
		for _, d := range diags {
			if d.Sev == olden.DiagError {
				os.Exit(1)
			}
		}
		return
	}
	fmt.Print(report)
	if *sites {
		fmt.Println()
		fmt.Print(report.SitesString())
	}
	if report.UsesMigrationOnly() {
		fmt.Println("overall: migration only (an \"M\" program)")
	} else {
		fmt.Println("overall: migration + caching (an \"M+C\" program)")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oldenc: "+format+"\n", args...)
	os.Exit(1)
}
