// Command oldenreport renders the pinned benchmark baselines
// (BENCH_<name>.json, written by `oldenbench -update`) as a
// markdown report — the reproduction's Table 2 and Table 3, each row
// annotated with the delta against the paper's published speedups — and
// gates candidate record sets against the pinned ones.
//
//	oldenreport                          # render ./BENCH_*.json
//	oldenreport -against old/            # Δ-prev columns vs an older pin set
//	oldenreport -candidate new/          # gate new/ against ./BENCH_*.json
//	oldenreport -candidate new/ -tol-cycles 0.02 -out report.md
//	oldenreport -wallclock WALLCLOCK.json      # + ns/sim-cycle section
//
// In gate mode the exit status is 1 when any configuration regressed
// beyond tolerance; the simulator is deterministic, so the default zero
// tolerance passes byte-identical reruns and fails any slowdown at all.
// The -wallclock section (a WallFile written by `oldenbench -wallclock`)
// is the one host-dependent part of the report: it renders simulator
// throughput as wall-clock ns per simulated cycle and is informational
// only — never part of the gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench/record"
)

func main() {
	dir := flag.String("dir", ".", "directory holding the pinned BENCH_<name>.json baselines")
	against := flag.String("against", "", "older baseline set for the Δ-prev columns")
	candidate := flag.String("candidate", "", "candidate record set to gate against -dir (exit 1 on regression)")
	procs := flag.Int("procs", 0, "machine size to render (0 = infer from the records)")
	tolCycles := flag.Float64("tol-cycles", 0, "allowed fractional cycle increase (0.02 = 2%)")
	tolMiss := flag.Float64("tol-miss", 0, "allowed absolute miss-percentage increase in points")
	wallclock := flag.String("wallclock", "", "append the ns/sim-cycle section from this WallFile JSON (written by oldenbench -wallclock; informational, never gated)")
	out := flag.String("out", "", "write the markdown report to this file instead of stdout")
	flag.Parse()

	base, err := record.LoadDir(*dir)
	if err != nil {
		fatalf("%v", err)
	}

	var report string
	var regs []record.Regression
	tol := record.Tolerance{CyclesFrac: *tolCycles, MissPctAbs: *tolMiss}
	switch {
	case *candidate != "":
		cand, err := record.LoadDir(*candidate)
		if err != nil {
			fatalf("%v", err)
		}
		regs, err = record.CompareDirs(base, cand, tol)
		if err != nil {
			fatalf("%v", err)
		}
		// The candidate is the report's subject; the pins are "prev".
		report = record.Report(cand, base, renderProcs(*procs, cand), regs)
	case *against != "":
		prev, err := record.LoadDir(*against)
		if err != nil {
			fatalf("%v", err)
		}
		report = record.Report(base, prev, renderProcs(*procs, base), nil)
	default:
		report = record.Report(base, nil, renderProcs(*procs, base), nil)
	}

	if *wallclock != "" {
		wf, err := record.LoadWall(*wallclock)
		if err != nil {
			fatalf("%v", err)
		}
		report += "\n" + record.WallMarkdown(wf)
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Print(report)
	}

	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "oldenreport: %d regression(s) beyond tolerance:\n", len(regs))
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
}

// renderProcs infers the machine size the records were collected at when
// the flag leaves it to us: the first parallel record names it.
func renderProcs(flagProcs int, files []record.File) int {
	if flagProcs > 0 {
		return flagProcs
	}
	for _, f := range files {
		for _, r := range f.Records {
			if !r.Baseline {
				return r.Procs
			}
		}
	}
	return 4
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oldenreport: "+format+"\n", args...)
	os.Exit(1)
}
