// Command oldensim runs one Olden benchmark at one configuration and
// prints cycles, speedup against the sequential baseline, and the runtime
// statistics behind Tables 2 and 3.
//
//	oldensim -bench treeadd -procs 8
//	oldensim -bench voronoi -procs 32 -mode migrate -scale 8
//	oldensim -bench health -procs 16 -scheme bilateral
//
// With -trace the timed region is recorded on the simulation clock and
// exported in Chrome trace_event JSON (load the file in chrome://tracing
// or ui.perfetto.dev); the trace digest is printed either way tracing is
// on. -profile aggregates the trace into per-site and per-page profiles.
//
//	oldensim -bench em3d -procs 4 -scheme global -trace em3d.json -profile
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/rt"
	"repro/internal/trace"

	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

func main() {
	name := flag.String("bench", "", "benchmark name ("+strings.Join(bench.Names(), ", ")+")")
	procs := flag.Int("procs", 8, "simulated machine size")
	scale := flag.Int("scale", bench.DefaultScale, "divide the paper's problem size (1 = full)")
	mode := flag.String("mode", "heuristic", "mechanism mode: heuristic, migrate, cache")
	scheme := flag.String("scheme", "local", "coherence scheme: local, global, bilateral")
	traceOut := flag.String("trace", "", "record the timed region and write Chrome trace JSON to this file")
	profile := flag.Bool("profile", false, "print per-site and per-page profiles of the timed region")
	traceCap := flag.Int("tracecap", 0, "trace ring capacity in events (0 = default)")
	flag.Parse()

	info, ok := bench.Get(*name)
	if !ok {
		fatalf("unknown benchmark %q (want one of %s)", *name, strings.Join(bench.Names(), ", "))
	}
	var m rt.Mode
	switch *mode {
	case "heuristic":
		m = rt.Heuristic
	case "migrate":
		m = rt.MigrateOnly
	case "cache":
		m = rt.CacheOnly
	default:
		fatalf("unknown -mode %q", *mode)
	}
	k, err := coherence.Parse(*scheme)
	if err != nil {
		fatalf("%v", err)
	}

	base := info.Run(bench.Config{Baseline: true, Scale: *scale})
	if !base.Verified() {
		fatalf("baseline failed verification: %#x != %#x", base.Check, base.WantCheck)
	}
	var rec *trace.Recorder
	if *traceOut != "" || *profile {
		rec = trace.New(*traceCap)
	}
	res := info.Run(bench.Config{Procs: *procs, Scale: *scale, Mode: m, Scheme: k, Trace: rec})
	status := "verified"
	if !res.Verified() {
		status = fmt.Sprintf("FAILED (%#x != %#x)", res.Check, res.WantCheck)
	}

	fmt.Printf("%s: %s (%s)\n", *name, info.Description, info.PaperSize)
	fmt.Printf("procs=%d scale=1/%d mode=%s scheme=%s\n", *procs, *scale, m, k)
	fmt.Printf("result: %s\n", status)
	fmt.Printf("sequential baseline: %d cycles\n", base.Cycles)
	fmt.Printf("parallel makespan:   %d cycles  (speedup %.2f)\n",
		res.Cycles, float64(base.Cycles)/float64(res.Cycles))
	s := res.Stats
	fmt.Printf("migrations %d, returns %d, futures %d, pointer tests %d\n",
		s.Migrations, s.Returns, s.Futures, s.PtrTests)
	fmt.Printf("cacheable reads %d (%.2f%% remote), writes %d (%.2f%% remote)\n",
		s.CacheableReads, pct(s.RemoteReads, s.CacheableReads),
		s.CacheableWrites, pct(s.RemoteWrites, s.CacheableWrites))
	fmt.Printf("misses %d (%.2f%% of remote refs), lines fetched %d, pages cached %d\n",
		s.Misses, s.MissPct(), s.LineFetches, res.Pages)
	if rec != nil {
		fmt.Printf("trace digest: %s\n", rec.Digest())
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatalf("create trace file: %v", err)
			}
			if err := rec.WriteChrome(f); err != nil {
				fatalf("write trace: %v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("close trace file: %v", err)
			}
			fmt.Printf("trace: %d events written to %s (load in chrome://tracing or ui.perfetto.dev)\n",
				rec.Len(), *traceOut)
		}
		if *profile {
			fmt.Println()
			fmt.Print(rec.Profile().Format(20))
		}
	}
	if !res.Verified() {
		os.Exit(1)
	}
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oldensim: "+format+"\n", args...)
	os.Exit(1)
}
