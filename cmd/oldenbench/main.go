// Command oldenbench regenerates the paper's experiments end-to-end:
//
//	oldenbench -table 1            # benchmark descriptions
//	oldenbench -table 2            # speedups + migrate-only comparison
//	oldenbench -table 3            # caching statistics per coherence scheme
//	oldenbench -figure 2           # list-distribution crossover
//
// Problem sizes default to 1/16 of the paper's (Table 1) sizes; pass
// -scale 1 for the full sizes. -procs selects the machine sizes for
// Table 2 and -maxprocs the machine size for Table 3 / Figure 2.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/coherence"

	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

func main() {
	table := flag.Int("table", 0, "regenerate a table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "regenerate a figure (2)")
	curve := flag.String("curve", "", "print one benchmark's speedup curve (heuristic, migrate-only and cache-only)")
	scale := flag.Int("scale", bench.DefaultScale, "divide the paper's problem sizes by this factor (1 = full size)")
	procsFlag := flag.String("procs", "1,2,4,8,16,32", "machine sizes for Table 2")
	maxProcs := flag.Int("maxprocs", 32, "machine size for Table 3 and Figure 2")
	scheme := flag.String("scheme", "local", "coherence scheme for Table 2: local, global, bilateral")
	flag.Parse()

	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 || v > 64 {
			fatalf("bad -procs entry %q", f)
		}
		procs = append(procs, v)
	}
	var kind coherence.Kind
	switch *scheme {
	case "local":
		kind = coherence.LocalKnowledge
	case "global":
		kind = coherence.GlobalKnowledge
	case "bilateral":
		kind = coherence.Bilateral
	default:
		fatalf("unknown -scheme %q", *scheme)
	}

	switch {
	case *table == 1:
		fmt.Print(bench.Table1())
	case *table == 2:
		out, err := bench.Table2(procs, *scale, kind)
		fmt.Print(out)
		if err != nil {
			fatalf("table 2: %v", err)
		}
	case *table == 3:
		out, err := bench.Table3(*maxProcs, *scale)
		fmt.Print(out)
		if err != nil {
			fatalf("table 3: %v", err)
		}
	case *figure == 2:
		fmt.Print(bench.Figure2(4096, *maxProcs))
	case *curve != "":
		out, err := bench.Curve(*curve, procs, *scale, kind)
		fmt.Print(out)
		if err != nil {
			fatalf("curve: %v", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table 1|2|3, -figure 2 or -curve <bench>")
		flag.Usage()
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oldenbench: "+format+"\n", args...)
	os.Exit(1)
}
