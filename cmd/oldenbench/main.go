// Command oldenbench regenerates the paper's experiments end-to-end:
//
//	oldenbench -table 1            # benchmark descriptions
//	oldenbench -table 2            # speedups + migrate-only comparison
//	oldenbench -table 3            # caching statistics per coherence scheme
//	oldenbench -figure 2           # list-distribution crossover
//
// Problem sizes default to 1/16 of the paper's (Table 1) sizes; pass
// -scale 1 for the full sizes. -procs selects the machine sizes for
// Table 2 and -maxprocs the machine size for Table 3 / Figure 2.
//
// Beyond the paper's aggregates, one benchmark run can be traced on the
// simulation clock and profiled per site and per page:
//
//	oldenbench -bench treeadd -maxprocs 4 -trace out.json -profile
//
// The trace file is Chrome trace_event JSON (chrome://tracing, Perfetto);
// -profile prints miss-latency histograms, migration fan-out and
// invalidation traffic; the printed digest is the byte-stable artifact
// the regression tests pin.
//
// Persistent records and the perf gate:
//
//	oldenbench -update -maxprocs 4             # re-pin BENCH_<name>.json in .
//	oldenbench -record out/ -maxprocs 4        # same suite, elsewhere
//	oldenbench -table 2 -json                  # stream RunRecord JSON to stdout
//
// -json moves the human tables to stderr and emits one JSON object per
// benchmark run on stdout; cmd/oldenreport renders and gates the pinned
// files.
//
// Simulator throughput (wall clock, host-dependent — never pinned):
//
//	oldenbench -wallclock WALLCLOCK.json -maxprocs 4   # ns/sim-cycle
//
// times every benchmark × coherence scheme (best of -wallcount runs) and
// writes a WallFile; `oldenreport -wallclock` renders it as the report's
// ns/sim-cycle section.
//
// -list prints the machine-readable benchmark catalog (names, coherence
// schemes, mechanism modes, default parameters) as JSON — byte-identical
// to oldend's GET /benchmarks, so clients of either can never drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/record"
	"repro/internal/coherence"
	"repro/internal/rt"
	"repro/internal/trace"

	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

func main() {
	table := flag.Int("table", 0, "regenerate a table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "regenerate a figure (2)")
	curve := flag.String("curve", "", "print one benchmark's speedup curve (heuristic, migrate-only and cache-only)")
	scale := flag.Int("scale", bench.DefaultScale, "divide the paper's problem sizes by this factor (1 = full size)")
	procsFlag := flag.String("procs", "1,2,4,8,16,32", "machine sizes for Table 2")
	maxProcs := flag.Int("maxprocs", 32, "machine size for Table 3 and Figure 2")
	scheme := flag.String("scheme", "local", "coherence scheme for Table 2: local, global, bilateral")
	benchName := flag.String("bench", "", "trace/profile one benchmark at -maxprocs processors")
	traceOut := flag.String("trace", "", "with -bench: write Chrome trace JSON of the timed region to this file")
	profile := flag.Bool("profile", false, "with -bench: print per-site and per-page profiles")
	jsonOut := flag.Bool("json", false, "emit one RunRecord JSON object per benchmark run on stdout (human output moves to stderr)")
	recordDir := flag.String("record", "", "run the pinned record suite at -maxprocs/-scale and write BENCH_<name>.json files into this directory")
	wallclock := flag.String("wallclock", "", "measure wall-clock ns/simulated-cycle for every benchmark × scheme at -maxprocs/-scale and write the (non-pinned) WallFile JSON here")
	wallCount := flag.Int("wallcount", 3, "with -wallclock: timed repetitions per configuration (best-of wins)")
	update := flag.Bool("update", false, "shorthand for -record . : re-pin the committed BENCH_<name>.json baselines")
	list := flag.Bool("list", false, "print the machine-readable benchmark catalog (names, schemes, modes, default params) as JSON and exit")
	flag.Parse()

	if *list {
		b, err := bench.CatalogJSON()
		if err != nil {
			fatalf("catalog: %v", err)
		}
		os.Stdout.Write(b)
		return
	}

	out := io.Writer(os.Stdout)
	if *jsonOut {
		// Records own stdout; everything human-readable moves aside.
		out = os.Stderr
		enc := json.NewEncoder(os.Stdout)
		bench.SetRunObserver(func(r record.RunRecord) {
			if err := enc.Encode(r); err != nil {
				fatalf("encode record: %v", err)
			}
		})
	}

	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 || v > 64 {
			fatalf("bad -procs entry %q", f)
		}
		procs = append(procs, v)
	}
	kind, err := coherence.Parse(*scheme)
	if err != nil {
		fatalf("%v", err)
	}

	switch {
	case *wallclock != "":
		runWallclock(out, *wallclock, *benchName, *maxProcs, *scale, *wallCount)
	case *update || *recordDir != "":
		dir := *recordDir
		if *update {
			dir = "."
		}
		runRecordSuite(out, dir, *benchName, *maxProcs, *scale)
	case *table == 1:
		fmt.Fprint(out, bench.Table1())
	case *table == 2:
		s, err := bench.Table2(procs, *scale, kind)
		fmt.Fprint(out, s)
		if err != nil {
			fatalf("table 2: %v", err)
		}
	case *table == 3:
		s, err := bench.Table3(*maxProcs, *scale)
		fmt.Fprint(out, s)
		if err != nil {
			fatalf("table 3: %v", err)
		}
	case *figure == 2:
		fmt.Fprint(out, bench.Figure2(4096, *maxProcs))
	case *curve != "":
		s, err := bench.Curve(*curve, procs, *scale, kind)
		fmt.Fprint(out, s)
		if err != nil {
			fatalf("curve: %v", err)
		}
	case *benchName != "":
		runTraced(out, *benchName, *maxProcs, *scale, kind, *traceOut, *profile)
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table 1|2|3, -figure 2, -curve <bench>, -bench <bench>, -record <dir> or -update")
		flag.Usage()
		os.Exit(2)
	}
}

// runRecordSuite collects the pinned configuration suite for every
// benchmark (or just `only`) and writes one BENCH_<name>.json per
// benchmark into dir.
func runRecordSuite(out io.Writer, dir, only string, procs, scale int) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("record dir: %v", err)
	}
	names := bench.Names()
	if only != "" {
		if _, ok := bench.Get(only); !ok {
			fatalf("unknown benchmark %q (want one of %s)", only, strings.Join(bench.Names(), ", "))
		}
		names = []string{only}
	}
	for _, name := range names {
		f, err := bench.CollectRecords(name, procs, scale)
		if err != nil {
			fatalf("record %s: %v", name, err)
		}
		if err := f.Save(dir); err != nil {
			fatalf("save %s: %v", name, err)
		}
		base, _ := f.Lookup("baseline")
		heur, _ := f.Lookup(record.HeuristicKey(procs, "local"))
		fmt.Fprintf(out, "%-12s pinned: baseline %d cycles, P=%d %d cycles (S=%.2f) -> %s\n",
			name, base.Cycles, procs, heur.Cycles,
			float64(base.Cycles)/float64(heur.Cycles),
			filepath.Join(dir, record.Filename(name)))
	}
}

// runWallclock times every benchmark (or just `only`) under every
// coherence scheme at P=procs and writes the measurements as a WallFile.
// Unlike the pinned records this artifact is host-dependent by nature:
// the simulated cycle counts inside it are deterministic, the wall times
// are not, so it is never committed and never gated — oldenreport's
// -wallclock flag renders it as the ns/sim-cycle section.
func runWallclock(out io.Writer, path, only string, procs, scale, count int) {
	if count < 1 {
		count = 1
	}
	names := bench.Names()
	if only != "" {
		if _, ok := bench.Get(only); !ok {
			fatalf("unknown benchmark %q (want one of %s)", only, strings.Join(bench.Names(), ", "))
		}
		names = []string{only}
	}
	var wf record.WallFile
	for _, name := range names {
		info, _ := bench.Get(name)
		for _, scheme := range coherence.Kinds() {
			cfg := bench.Config{Procs: procs, Scale: scale, Scheme: scheme}
			var cycles int64
			best := int64(-1)
			for i := 0; i < count; i++ {
				start := time.Now()
				res := info.Run(cfg)
				ns := time.Since(start).Nanoseconds()
				if !res.Verified() {
					fatalf("wallclock %s/%s: check %#x != %#x", name, scheme, res.Check, res.WantCheck)
				}
				cycles = res.Cycles
				if best < 0 || ns < best {
					best = ns
				}
			}
			rec := record.WallRecord{
				Benchmark: name, Procs: procs, Scheme: scheme.String(),
				Scale: scale, Runs: count, Cycles: cycles, WallNs: best,
			}
			fmt.Fprintf(out, "%-12s %-9s P=%d: %d cycles in %.2f ms — %.1f ns/sim-cycle\n",
				name, scheme, procs, rec.Cycles, float64(rec.WallNs)/1e6, rec.NsPerCycle())
			wf.Records = append(wf.Records, rec)
		}
	}
	if err := wf.SaveWall(path); err != nil {
		fatalf("save wallclock: %v", err)
	}
	fmt.Fprintf(out, "geomean %.1f ns/sim-cycle -> %s\n", wf.Geomean(), path)
}

// runTraced runs one benchmark with the event recorder attached and
// surfaces the trace: digest always, Chrome JSON and profiles on request.
func runTraced(out io.Writer, name string, procs, scale int, kind coherence.Kind, traceOut string, profile bool) {
	info, ok := bench.Get(name)
	if !ok {
		fatalf("unknown benchmark %q (want one of %s)", name, strings.Join(bench.Names(), ", "))
	}
	rec := trace.New(0)
	var rtm *rt.Runtime
	res := info.Run(bench.Config{
		Procs:       procs,
		Scale:       scale,
		Scheme:      kind,
		Trace:       rec,
		RuntimeHook: func(r *rt.Runtime) { rtm = r },
	})
	status := "verified"
	if !res.Verified() {
		status = fmt.Sprintf("FAILED (%#x != %#x)", res.Check, res.WantCheck)
	}
	fmt.Fprintf(out, "%s: procs=%d scale=1/%d scheme=%s — %s, %d cycles\n",
		name, procs, scale, kind, status, res.Cycles)
	fmt.Fprintf(out, "trace digest: %s\n", rec.Digest())
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatalf("create trace file: %v", err)
		}
		if err := rec.WriteChrome(f); err != nil {
			fatalf("write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close trace file: %v", err)
		}
		fmt.Fprintf(out, "trace: %d events written to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			rec.Len(), traceOut)
	}
	if profile {
		fmt.Fprintln(out)
		fmt.Fprint(out, rec.Profile().Format(20))
		if rtm != nil {
			fmt.Fprintln(out, "\nper-site mechanism counters (runtime view):")
			fmt.Fprintf(out, "%-28s %-8s %10s %10s %10s %10s\n",
				"site", "mech", "reads", "writes", "remote", "migrations")
			for _, s := range rtm.SiteStats() {
				fmt.Fprintf(out, "%-28s %-8s %10d %10d %10d %10d\n",
					s.Name, s.Mech, s.Reads, s.Writes, s.Remote, s.Migrations)
			}
		}
	}
	if !res.Verified() {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oldenbench: "+format+"\n", args...)
	os.Exit(1)
}
