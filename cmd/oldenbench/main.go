// Command oldenbench regenerates the paper's experiments end-to-end:
//
//	oldenbench -table 1            # benchmark descriptions
//	oldenbench -table 2            # speedups + migrate-only comparison
//	oldenbench -table 3            # caching statistics per coherence scheme
//	oldenbench -figure 2           # list-distribution crossover
//
// Problem sizes default to 1/16 of the paper's (Table 1) sizes; pass
// -scale 1 for the full sizes. -procs selects the machine sizes for
// Table 2 and -maxprocs the machine size for Table 3 / Figure 2.
//
// Beyond the paper's aggregates, one benchmark run can be traced on the
// simulation clock and profiled per site and per page:
//
//	oldenbench -bench treeadd -maxprocs 4 -trace out.json -profile
//
// The trace file is Chrome trace_event JSON (chrome://tracing, Perfetto);
// -profile prints miss-latency histograms, migration fan-out and
// invalidation traffic; the printed digest is the byte-stable artifact
// the regression tests pin.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/coherence"
	"repro/internal/rt"
	"repro/internal/trace"

	_ "repro/internal/bench/barneshut"
	_ "repro/internal/bench/bisort"
	_ "repro/internal/bench/em3d"
	_ "repro/internal/bench/health"
	_ "repro/internal/bench/mst"
	_ "repro/internal/bench/perimeter"
	_ "repro/internal/bench/power"
	_ "repro/internal/bench/treeadd"
	_ "repro/internal/bench/tsp"
	_ "repro/internal/bench/voronoi"
)

func main() {
	table := flag.Int("table", 0, "regenerate a table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "regenerate a figure (2)")
	curve := flag.String("curve", "", "print one benchmark's speedup curve (heuristic, migrate-only and cache-only)")
	scale := flag.Int("scale", bench.DefaultScale, "divide the paper's problem sizes by this factor (1 = full size)")
	procsFlag := flag.String("procs", "1,2,4,8,16,32", "machine sizes for Table 2")
	maxProcs := flag.Int("maxprocs", 32, "machine size for Table 3 and Figure 2")
	scheme := flag.String("scheme", "local", "coherence scheme for Table 2: local, global, bilateral")
	benchName := flag.String("bench", "", "trace/profile one benchmark at -maxprocs processors")
	traceOut := flag.String("trace", "", "with -bench: write Chrome trace JSON of the timed region to this file")
	profile := flag.Bool("profile", false, "with -bench: print per-site and per-page profiles")
	flag.Parse()

	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 || v > 64 {
			fatalf("bad -procs entry %q", f)
		}
		procs = append(procs, v)
	}
	var kind coherence.Kind
	switch *scheme {
	case "local":
		kind = coherence.LocalKnowledge
	case "global":
		kind = coherence.GlobalKnowledge
	case "bilateral":
		kind = coherence.Bilateral
	default:
		fatalf("unknown -scheme %q", *scheme)
	}

	switch {
	case *table == 1:
		fmt.Print(bench.Table1())
	case *table == 2:
		out, err := bench.Table2(procs, *scale, kind)
		fmt.Print(out)
		if err != nil {
			fatalf("table 2: %v", err)
		}
	case *table == 3:
		out, err := bench.Table3(*maxProcs, *scale)
		fmt.Print(out)
		if err != nil {
			fatalf("table 3: %v", err)
		}
	case *figure == 2:
		fmt.Print(bench.Figure2(4096, *maxProcs))
	case *curve != "":
		out, err := bench.Curve(*curve, procs, *scale, kind)
		fmt.Print(out)
		if err != nil {
			fatalf("curve: %v", err)
		}
	case *benchName != "":
		runTraced(*benchName, *maxProcs, *scale, kind, *traceOut, *profile)
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table 1|2|3, -figure 2, -curve <bench> or -bench <bench>")
		flag.Usage()
		os.Exit(2)
	}
}

// runTraced runs one benchmark with the event recorder attached and
// surfaces the trace: digest always, Chrome JSON and profiles on request.
func runTraced(name string, procs, scale int, kind coherence.Kind, traceOut string, profile bool) {
	info, ok := bench.Get(name)
	if !ok {
		fatalf("unknown benchmark %q (want one of %s)", name, strings.Join(bench.Names(), ", "))
	}
	rec := trace.New(0)
	var rtm *rt.Runtime
	res := info.Run(bench.Config{
		Procs:       procs,
		Scale:       scale,
		Scheme:      kind,
		Trace:       rec,
		RuntimeHook: func(r *rt.Runtime) { rtm = r },
	})
	status := "verified"
	if !res.Verified() {
		status = fmt.Sprintf("FAILED (%#x != %#x)", res.Check, res.WantCheck)
	}
	fmt.Printf("%s: procs=%d scale=1/%d scheme=%s — %s, %d cycles\n",
		name, procs, scale, kind, status, res.Cycles)
	fmt.Printf("trace digest: %s\n", rec.Digest())
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatalf("create trace file: %v", err)
		}
		if err := rec.WriteChrome(f); err != nil {
			fatalf("write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close trace file: %v", err)
		}
		fmt.Printf("trace: %d events written to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			rec.Len(), traceOut)
	}
	if profile {
		fmt.Println()
		fmt.Print(rec.Profile().Format(20))
		if rtm != nil {
			fmt.Println("\nper-site mechanism counters (runtime view):")
			fmt.Printf("%-28s %-8s %10s %10s %10s %10s\n",
				"site", "mech", "reads", "writes", "remote", "migrations")
			for _, s := range rtm.SiteStats() {
				fmt.Printf("%-28s %-8s %10d %10d %10d %10d\n",
					s.Name, s.Mech, s.Reads, s.Writes, s.Remote, s.Migrations)
			}
		}
	}
	if !res.Verified() {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "oldenbench: "+format+"\n", args...)
	os.Exit(1)
}
